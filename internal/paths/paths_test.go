package paths

import (
	"math/rand"
	"testing"

	"sate/internal/constellation"
	"sate/internal/groundnet"
	"sate/internal/topology"
)

func snapFor(c *constellation.Constellation, mode topology.CrossShellMode) *topology.Snapshot {
	cfg := topology.DefaultConfig(mode)
	if mode == topology.CrossShellGroundRelays {
		g := groundnet.SyntheticPopulation(1)
		cfg.Relays = groundnet.PlaceSites(60, g.Probabilities(0.3), rand.New(rand.NewSource(5)))
	}
	return topology.NewGenerator(c, cfg).Snapshot(0)
}

func TestPathBasics(t *testing.T) {
	p := NewPath(1, 2, 3)
	if p.Src() != 1 || p.Dst() != 3 || p.Hops() != 2 {
		t.Fatalf("path basics: %+v", p)
	}
	if p.Key() != "1-2-3" {
		t.Errorf("key = %q", p.Key())
	}
	if p.HasLoop() {
		t.Error("no loop expected")
	}
	if !NewPath(1, 2, 1).HasLoop() {
		t.Error("loop not detected")
	}
	links := p.Links()
	if len(links) != 2 || links[0] != topology.MakeLink(1, 2, topology.IntraOrbit) {
		t.Errorf("links = %v", links)
	}
}

func TestConcat(t *testing.T) {
	a := NewPath(1, 2, 3)
	b := NewPath(3, 4)
	c, ok := Concat(a, b)
	if !ok || c.Key() != "1-2-3-4" {
		t.Fatalf("concat: %v %v", c, ok)
	}
	if _, ok := Concat(a, NewPath(9, 10)); ok {
		t.Error("non-joining concat must fail")
	}
	if _, ok := Concat(a, NewPath(3, 2)); ok {
		t.Error("looping concat must fail")
	}
}

func TestDedup(t *testing.T) {
	ps := []Path{NewPath(1, 2), NewPath(1, 3), NewPath(1, 2)}
	d := Dedup(ps)
	if len(d) != 2 {
		t.Errorf("dedup -> %d", len(d))
	}
}

func TestShortestPathBFS(t *testing.T) {
	c := constellation.SingleShell(6, 8)
	s := snapFor(c, topology.CrossShellNone)
	g := GraphFrom(s)
	p, ok := g.ShortestPath(0, 3)
	if !ok {
		t.Fatal("no path")
	}
	// Slots 0 and 3 in one plane: 3 hops along the orbit.
	if p.Hops() != 3 {
		t.Errorf("hops = %d want 3", p.Hops())
	}
	dist := g.ShortestHops(0)
	if dist[3] != 3 {
		t.Errorf("dist = %d", dist[3])
	}
}

func TestKShortestProperties(t *testing.T) {
	c := constellation.SingleShell(6, 8)
	s := snapFor(c, topology.CrossShellNone)
	g := GraphFrom(s)
	links := s.LinkSet()
	ps := g.KShortest(0, 20, 10)
	if len(ps) == 0 {
		t.Fatal("no paths")
	}
	prevHops := 0
	seen := map[string]bool{}
	for _, p := range ps {
		if p.Src() != 0 || p.Dst() != 20 {
			t.Fatal("endpoints wrong")
		}
		if p.HasLoop() {
			t.Fatal("loop in k-shortest result")
		}
		if !p.ValidIn(links) {
			t.Fatal("invalid hop in result")
		}
		if p.Hops() < prevHops {
			t.Fatal("paths not sorted by hops")
		}
		prevHops = p.Hops()
		if seen[p.Key()] {
			t.Fatal("duplicate path")
		}
		seen[p.Key()] = true
	}
}

func TestKShortestMatchesYenHopCounts(t *testing.T) {
	c := constellation.SingleShell(5, 6)
	s := snapFor(c, topology.CrossShellNone)
	g := GraphFrom(s)
	for _, pair := range [][2]topology.NodeID{{0, 7}, {2, 17}, {1, 28}} {
		a := g.KShortest(pair[0], pair[1], 4)
		b := g.YenKShortest(pair[0], pair[1], 4)
		if len(a) == 0 || len(b) == 0 {
			t.Fatalf("no paths for %v", pair)
		}
		// Both must find the same minimum hop count, and the same multiset of
		// hop counts when both return k paths.
		if a[0].Hops() != b[0].Hops() {
			t.Errorf("pair %v: min hops %d vs %d", pair, a[0].Hops(), b[0].Hops())
		}
		if len(a) == len(b) {
			for i := range a {
				if a[i].Hops() != b[i].Hops() {
					t.Errorf("pair %v: path %d hops %d vs %d", pair, i, a[i].Hops(), b[i].Hops())
				}
			}
		}
	}
}

func TestYenLoopless(t *testing.T) {
	c := constellation.SingleShell(4, 5)
	s := snapFor(c, topology.CrossShellNone)
	g := GraphFrom(s)
	ps := g.YenKShortest(0, 11, 6)
	seen := map[string]bool{}
	for _, p := range ps {
		if p.HasLoop() {
			t.Fatal("Yen produced loop")
		}
		if seen[p.Key()] {
			t.Fatal("Yen produced duplicate")
		}
		seen[p.Key()] = true
	}
}

func TestTorusDelta(t *testing.T) {
	cases := []struct{ a, b, n, want int }{
		{0, 3, 10, 3},
		{3, 0, 10, -3},
		{0, 7, 10, -3},
		{9, 0, 10, 1},
		{0, 5, 10, 5},
		{2, 2, 7, 0},
	}
	for _, c := range cases {
		if got := torusDelta(c.a, c.b, c.n); got != c.want && !(c.a == 0 && c.b == 5 && got == -5) {
			t.Errorf("torusDelta(%d,%d,%d) = %d want %d", c.a, c.b, c.n, got, c.want)
		}
	}
}

func TestIntraShellPathsManhattan(t *testing.T) {
	c := constellation.SingleShell(8, 8)
	s := snapFor(c, topology.CrossShellNone)
	r := NewGridRouter(c, s)
	// (0,0) -> (2,1): Manhattan distance 3, C(3,1)=3 minimum-hop paths.
	src := c.SatAt(constellation.GridCoord{Plane: 0, Slot: 0}).ID
	dst := c.SatAt(constellation.GridCoord{Plane: 2, Slot: 1}).ID
	ps := r.IntraShellPaths(src, dst, 10)
	if len(ps) != 3 {
		t.Fatalf("paths = %d want 3", len(ps))
	}
	links := s.LinkSet()
	for _, p := range ps {
		if p.Hops() != 3 {
			t.Errorf("hops = %d want 3 (Manhattan)", p.Hops())
		}
		if !p.ValidIn(links) {
			t.Error("invalid grid path")
		}
		if p.Src() != topology.NodeID(src) || p.Dst() != topology.NodeID(dst) {
			t.Error("endpoints wrong")
		}
	}
	if len(Dedup(ps)) != 3 {
		t.Error("duplicate lattice paths")
	}
}

func TestIntraShellPathsWrapAround(t *testing.T) {
	c := constellation.SingleShell(8, 8)
	s := snapFor(c, topology.CrossShellNone)
	r := NewGridRouter(c, s)
	// (0,0) -> (7,0): wrapping is 1 hop, not 7.
	src := c.SatAt(constellation.GridCoord{Plane: 0, Slot: 0}).ID
	dst := c.SatAt(constellation.GridCoord{Plane: 7, Slot: 0}).ID
	ps := r.IntraShellPaths(src, dst, 5)
	if len(ps) == 0 || ps[0].Hops() != 1 {
		t.Fatalf("wrap-around path: %+v", ps)
	}
}

func TestGridMatchesBFSMinimumHops(t *testing.T) {
	c := constellation.SingleShell(7, 9)
	s := snapFor(c, topology.CrossShellNone)
	r := NewGridRouter(c, s)
	g := GraphFrom(s)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		a := constellation.SatID(rng.Intn(c.Size()))
		b := constellation.SatID(rng.Intn(c.Size()))
		if a == b {
			continue
		}
		ps := r.IntraShellPaths(a, b, 3)
		if len(ps) == 0 {
			t.Fatalf("grid found no path %d->%d", a, b)
		}
		bfs, _ := g.ShortestPath(topology.NodeID(a), topology.NodeID(b))
		if ps[0].Hops() != bfs.Hops() {
			t.Errorf("%d->%d: grid %d hops, BFS %d", a, b, ps[0].Hops(), bfs.Hops())
		}
	}
}

func TestInterShellLasers(t *testing.T) {
	c := constellation.Toy(6, 8)
	s := snapFor(c, topology.CrossShellLasers)
	r := NewGridRouter(c, s)
	links := s.LinkSet()
	src := c.ShellSats(0)[5].ID
	dst := c.ShellSats(1)[30].ID
	ps := r.KShortest(src, dst, 10)
	if len(ps) == 0 {
		t.Fatal("no inter-shell paths")
	}
	for _, p := range ps {
		if p.Src() != topology.NodeID(src) || p.Dst() != topology.NodeID(dst) {
			t.Fatal("bad endpoints")
		}
		if p.HasLoop() || !p.ValidIn(links) {
			t.Fatal("invalid path")
		}
	}
}

func TestInterShellGroundRelays(t *testing.T) {
	c := constellation.Toy(6, 8)
	s := snapFor(c, topology.CrossShellGroundRelays)
	r := NewGridRouter(c, s)
	links := s.LinkSet()
	src := c.ShellSats(0)[2].ID
	dst := c.ShellSats(1)[20].ID
	ps := r.KShortest(src, dst, 5)
	if len(ps) == 0 {
		t.Skip("no relay-mode path at t=0 for this pair (coverage gap)")
	}
	foundRelayHop := false
	for _, p := range ps {
		if !p.ValidIn(links) {
			t.Fatal("invalid path")
		}
		for _, n := range p.Nodes {
			if int(n) >= s.NumSats {
				foundRelayHop = true
			}
		}
	}
	if !foundRelayHop {
		t.Log("note: generic fallback avoided relays; acceptable but unexpected")
	}
}

func TestKShortestSamePair(t *testing.T) {
	c := constellation.Toy(4, 4)
	s := snapFor(c, topology.CrossShellLasers)
	r := NewGridRouter(c, s)
	if ps := r.KShortest(3, 3, 5); ps != nil {
		t.Error("src==dst must yield no paths")
	}
}

func TestDBLazyAndIncremental(t *testing.T) {
	c := constellation.Toy(6, 8)
	cfg := topology.DefaultConfig(topology.CrossShellLasers)
	gen := topology.NewGenerator(c, cfg)
	s0 := gen.Snapshot(0)
	db := NewDB(c, s0, 4)

	// Request a few pairs.
	rng := rand.New(rand.NewSource(8))
	var pairs []Pair
	for i := 0; i < 25; i++ {
		a := constellation.SatID(rng.Intn(c.Size()))
		b := constellation.SatID(rng.Intn(c.Size()))
		if a == b {
			continue
		}
		ps := db.Paths(a, b)
		if len(ps) == 0 {
			t.Fatalf("no paths %d->%d", a, b)
		}
		pairs = append(pairs, Pair{a, b})
	}
	known := db.KnownPairs()
	if known == 0 {
		t.Fatal("no pairs cached")
	}

	// Advance until the topology changes, then update.
	var s1 *topology.Snapshot
	for dt := 10.0; dt <= 1200; dt += 10 {
		s1 = gen.Snapshot(dt)
		if !s1.SameTopology(s0) {
			break
		}
	}
	if s1.SameTopology(s0) {
		t.Skip("no topology change within 20 min at toy scale")
	}
	rec := db.Update(s1)
	if rec > known {
		t.Fatalf("recomputed %d of %d pairs", rec, known)
	}
	// All cached paths must now be valid in s1.
	links := s1.LinkSet()
	for _, pr := range pairs {
		for _, p := range db.Paths(pr.Src, pr.Dst) {
			if !p.ValidIn(links) {
				t.Fatalf("stale path survived update: %s", p.Key())
			}
		}
	}
	if db.Stats.Updates != 1 || db.Stats.PairsRecomputed != rec {
		t.Errorf("stats: %+v", db.Stats)
	}
}

func TestDBUpdateNoChange(t *testing.T) {
	c := constellation.Toy(4, 6)
	gen := topology.NewGenerator(c, topology.DefaultConfig(topology.CrossShellNone))
	s0 := gen.Snapshot(0)
	db := NewDB(c, s0, 3)
	db.Paths(0, 10)
	// Same topology (intra-shell only at 53 deg never changes).
	s1 := gen.Snapshot(1)
	if rec := db.Update(s1); rec != 0 {
		t.Errorf("recomputed %d pairs on unchanged topology", rec)
	}
}

func TestObsoleteFraction(t *testing.T) {
	c := constellation.Toy(6, 8)
	gen := topology.NewGenerator(c, topology.DefaultConfig(topology.CrossShellLasers))
	s0 := gen.Snapshot(0)
	r := NewGridRouter(c, s0)
	var configured []Path
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 30; i++ {
		a := constellation.SatID(rng.Intn(c.Size()))
		b := constellation.SatID(rng.Intn(c.Size()))
		if a == b {
			continue
		}
		configured = append(configured, r.KShortest(a, b, 3)...)
	}
	if f := ObsoleteFraction(configured, s0); f != 0 {
		t.Errorf("fresh paths obsolete fraction = %v", f)
	}
	// Much later, some paths should be obsolete (cross links re-pair).
	s2 := gen.Snapshot(1800)
	f := ObsoleteFraction(configured, s2)
	if f < 0 || f > 1 {
		t.Fatalf("fraction out of range: %v", f)
	}
	if ObsoleteFraction(nil, s2) != 0 {
		t.Error("empty set must give 0")
	}
}

func TestShortestPathByDistance(t *testing.T) {
	c := constellation.Toy(6, 8)
	s := snapFor(c, topology.CrossShellLasers)
	g := GraphFrom(s)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		a := topology.NodeID(rng.Intn(c.Size()))
		b := topology.NodeID(rng.Intn(c.Size()))
		if a == b {
			continue
		}
		p, km, ok := g.ShortestPathByDistance(a, b, s.Pos)
		if !ok {
			t.Fatalf("no distance path %d->%d", a, b)
		}
		if p.Src() != a || p.Dst() != b || p.HasLoop() {
			t.Fatal("malformed distance path")
		}
		// Reported length matches the path geometry.
		if gotKm := p.LengthKm(s); gotKm-km > 1e-6 || km-gotKm > 1e-6 {
			t.Fatalf("length mismatch: %v vs %v", gotKm, km)
		}
		// Distance-optimal length cannot exceed the min-hop path's length.
		hopPath, ok2 := g.ShortestPath(a, b)
		if !ok2 {
			t.Fatal("no hop path")
		}
		if km > hopPath.LengthKm(s)+1e-6 {
			t.Errorf("distance path longer than hop path: %v > %v", km, hopPath.LengthKm(s))
		}
		if !p.ValidIn(s.LinkSet()) {
			t.Fatal("distance path uses dead links")
		}
	}
}

func TestShortestPathByDistanceTrivial(t *testing.T) {
	c := constellation.SingleShell(4, 4)
	s := snapFor(c, topology.CrossShellNone)
	g := GraphFrom(s)
	p, km, ok := g.ShortestPathByDistance(3, 3, s.Pos)
	if !ok || km != 0 || p.Hops() != 0 {
		t.Errorf("self path: %v %v %v", p, km, ok)
	}
	// Disconnected: isolated snapshot.
	empty := &topology.Snapshot{NumSats: 4, NumNodes: 4, Pos: s.Pos[:4]}
	empty.Finalize()
	ge := GraphFrom(empty)
	if _, _, ok := ge.ShortestPathByDistance(0, 3, empty.Pos); ok {
		t.Error("disconnected nodes should have no path")
	}
}

func TestKShortestCrossShellProperty(t *testing.T) {
	// Property: for random cross-shell pairs, every returned path is valid,
	// loop-free, correctly terminated, and no longer than twice the BFS
	// minimum (the grid composition may detour via the nearest cross link).
	c := constellation.Toy(6, 8)
	s := snapFor(c, topology.CrossShellLasers)
	r := NewGridRouter(c, s)
	g := GraphFrom(s)
	links := s.LinkSet()
	rng := rand.New(rand.NewSource(21))
	checked := 0
	for i := 0; i < 60 && checked < 30; i++ {
		a := c.ShellSats(0)[rng.Intn(48)].ID
		b := c.ShellSats(1)[rng.Intn(48)].ID
		ps := r.KShortest(a, b, 6)
		if len(ps) == 0 {
			continue
		}
		bfs, ok := g.ShortestPath(topology.NodeID(a), topology.NodeID(b))
		if !ok {
			continue
		}
		checked++
		for _, p := range ps {
			if p.Src() != topology.NodeID(a) || p.Dst() != topology.NodeID(b) {
				t.Fatalf("endpoints wrong for %d->%d", a, b)
			}
			if p.HasLoop() || !p.ValidIn(links) {
				t.Fatalf("invalid path %s", p.Key())
			}
		}
		if ps[0].Hops() > 2*bfs.Hops()+4 {
			t.Errorf("%d->%d: grid best %d hops, BFS %d", a, b, ps[0].Hops(), bfs.Hops())
		}
	}
	if checked < 10 {
		t.Fatalf("only %d pairs checked", checked)
	}
}

func TestGridRouterDeterministic(t *testing.T) {
	c := constellation.Toy(5, 6)
	s := snapFor(c, topology.CrossShellLasers)
	r1 := NewGridRouter(c, s)
	r2 := NewGridRouter(c, s)
	for _, pair := range [][2]constellation.SatID{{0, 45}, {3, 31}, {10, 58}} {
		a := r1.KShortest(pair[0], pair[1], 5)
		b := r2.KShortest(pair[0], pair[1], 5)
		if len(a) != len(b) {
			t.Fatalf("pair %v: %d vs %d paths", pair, len(a), len(b))
		}
		for i := range a {
			if a[i].Key() != b[i].Key() {
				t.Fatalf("pair %v path %d differs", pair, i)
			}
		}
	}
}
