package paths

import (
	"math/rand"
	"testing"

	"sate/internal/constellation"
	"sate/internal/par"
	"sate/internal/topology"
)

// toyPairs draws a deterministic pair sample over the toy-60 constellation.
func toyPairs(c *constellation.Constellation, n int, seed int64) []Pair {
	rng := rand.New(rand.NewSource(seed))
	var out []Pair
	for len(out) < n {
		a := constellation.SatID(rng.Intn(c.Size()))
		b := constellation.SatID(rng.Intn(c.Size()))
		if a == b {
			continue
		}
		out = append(out, Pair{Src: a, Dst: b})
	}
	return out
}

// dbContents flattens a DB's pair->paths map into comparable form.
func dbContents(db *DB) map[Pair][]string {
	out := make(map[Pair][]string, len(db.paths))
	for pair, ps := range db.paths {
		keys := make([]string, len(ps))
		for i, p := range ps {
			keys[i] = p.Key()
		}
		out[pair] = keys
	}
	return out
}

func requireSameContents(t *testing.T, serial, parallel map[Pair][]string) {
	t.Helper()
	if len(serial) != len(parallel) {
		t.Fatalf("pair counts differ: serial %d, parallel %d", len(serial), len(parallel))
	}
	for pair, want := range serial {
		got, ok := parallel[pair]
		if !ok {
			t.Fatalf("pair %v missing from parallel DB", pair)
		}
		if len(got) != len(want) {
			t.Fatalf("pair %v: %d paths parallel vs %d serial", pair, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("pair %v path %d: %q parallel vs %q serial", pair, i, got[i], want[i])
			}
		}
	}
}

// TestDBParallelMatchesSerial builds the same path database over a seeded
// toy-60 snapshot with 1 worker and with 4 workers — contents (and the
// contents after an incremental Update across a topology change) must be
// identical.
func TestDBParallelMatchesSerial(t *testing.T) {
	cons := constellation.Toy(5, 6)
	gen := topology.NewGenerator(cons, topology.DefaultConfig(topology.CrossShellLasers))
	s0 := gen.Snapshot(0)
	// Advance until the topology actually changes so Update recomputes pairs.
	var s1 *topology.Snapshot
	for tm := 5.0; tm <= 600; tm += 5 {
		s := gen.Snapshot(tm)
		if !s.SameTopology(s0) {
			s1 = s
			break
		}
	}
	pairs := toyPairs(cons, 80, 3)

	build := func(workers int) (after0, after1 map[Pair][]string, recomputed int) {
		restore := par.SetWorkers(workers)
		defer restore()
		db := NewDB(cons, s0, 4, pairs...)
		after0 = dbContents(db)
		if s1 != nil {
			recomputed = db.Update(s1)
			after1 = dbContents(db)
		}
		return after0, after1, recomputed
	}

	s0Serial, s1Serial, recSerial := build(1)
	s0Par, s1Par, recPar := build(4)
	requireSameContents(t, s0Serial, s0Par)
	if s1 != nil {
		if recSerial != recPar {
			t.Fatalf("recomputed pairs differ: serial %d, parallel %d", recSerial, recPar)
		}
		requireSameContents(t, s1Serial, s1Par)
	} else {
		t.Log("topology never changed in the window; Update equivalence skipped")
	}
}

// TestPrecomputeMatchesLazyPaths checks bulk Precompute yields exactly what
// lazy per-pair Paths calls would.
func TestPrecomputeMatchesLazyPaths(t *testing.T) {
	cons := constellation.Toy(5, 6)
	s0 := topology.NewGenerator(cons, topology.DefaultConfig(topology.CrossShellLasers)).Snapshot(0)
	pairs := toyPairs(cons, 50, 9)

	lazy := NewDB(cons, s0, 4)
	for _, p := range pairs {
		lazy.Paths(p.Src, p.Dst)
	}
	restore := par.SetWorkers(4)
	defer restore()
	bulk := NewDB(cons, s0, 4)
	bulk.Precompute(pairs)
	requireSameContents(t, dbContents(lazy), dbContents(bulk))
	if bulk.KnownPairs() != lazy.KnownPairs() {
		t.Fatalf("known pairs differ: %d vs %d", bulk.KnownPairs(), lazy.KnownPairs())
	}
}

// benchKShortestFanout routes a fixed pair sample at Starlink scale under a
// fixed worker count.
func benchKShortestFanout(b *testing.B, workers int) {
	cons := constellation.StarlinkPhase1()
	snap := topology.NewGenerator(cons, topology.DefaultConfig(topology.CrossShellLasers)).Snapshot(0)
	router := NewGridRouter(cons, snap)
	router.generic() // pre-build so the bench measures routing, not setup
	pairs := toyPairs(cons, 64, 17)
	restore := par.SetWorkers(workers)
	defer restore()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := make([][]Path, len(pairs))
		par.For(len(pairs), 1, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				out[j] = router.KShortest(pairs[j].Src, pairs[j].Dst, 10)
			}
		})
	}
}

// BenchmarkParKShortestFanout reports serial-vs-parallel ns/op for the
// per-pair path fan-out (64 Starlink pairs per iteration).
func BenchmarkParKShortestFanoutSerial(b *testing.B)   { benchKShortestFanout(b, 1) }
func BenchmarkParKShortestFanoutParallel(b *testing.B) { benchKShortestFanout(b, 0) }
