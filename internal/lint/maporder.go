package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// map-order-determinism: in the deterministic packages (the same set the
// wall-clock rule protects, plus the solver/rules/core additions), a
// `for range` over a map is flagged when its body does something the
// iteration order leaks into: accumulating floats with compound
// assignment, appending to an outer slice, or emitting output. The
// sanctioned idiom — collect the keys, sort them, then iterate — is
// recognized: an append is exempt when a sort.*/slices.* call mentioning
// the destination follows the loop in the same block, and keyed writes
// (out[k] = ..., out[k] += ...) are exempt because they land in the same
// place regardless of visit order.

var mapOrderDeterminism = &Analyzer{
	Name: "map-order-determinism",
	Doc: "in deterministic packages, ranging over a map while accumulating " +
		"floats, appending to an outer slice, or emitting output depends on " +
		"Go's randomized iteration order; collect and sort the keys first",
	run: func(f *File, report func(n ast.Node, format string, args ...any)) {
		if f.IsTest || !deterministicPkg[f.RelPath] {
			return
		}
		for _, d := range f.Ast.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			scanStmtList(f, fd.Body.List, report)
		}
	},
}

// scanStmtList walks one statement list, analyzing map ranges that are
// direct members (so the follows-the-loop sort exemption sees the right
// sibling statements) and recursing into nested lists.
func scanStmtList(f *File, list []ast.Stmt, report func(n ast.Node, format string, args ...any)) {
	for i, st := range list {
		rs := st
		if lbl, ok := st.(*ast.LabeledStmt); ok {
			rs = lbl.Stmt
		}
		if r, ok := rs.(*ast.RangeStmt); ok {
			if _, isMap := typeUnder(f.Info.TypeOf(r.X)).(*types.Map); isMap {
				checkMapRange(f, r, list[i+1:], report)
			}
			scanStmtList(f, r.Body.List, report)
			continue
		}
		ast.Inspect(st, func(c ast.Node) bool {
			switch x := c.(type) {
			case *ast.BlockStmt:
				scanStmtList(f, x.List, report)
				return false
			case *ast.CaseClause:
				scanStmtList(f, x.Body, report)
				return false
			case *ast.CommClause:
				scanStmtList(f, x.Body, report)
				return false
			case *ast.FuncLit:
				scanStmtList(f, x.Body.List, report)
				return false
			}
			return true
		})
	}
}

// checkMapRange inspects one map-range body for order-dependent effects.
func checkMapRange(f *File, r *ast.RangeStmt, following []ast.Stmt, report func(n ast.Node, format string, args ...any)) {
	rangeVars := rangeVarObjs(f, r)
	ast.Inspect(r.Body, func(c ast.Node) bool {
		switch x := c.(type) {
		case *ast.AssignStmt:
			switch x.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				lhs := ast.Unparen(x.Lhs[0])
				if isFloatExpr(f, lhs) && !keyedByRangeVar(f, lhs, rangeVars) {
					report(x, "float accumulation inside map range depends on iteration order; sort the keys first")
				}
			case token.ASSIGN, token.DEFINE:
				for i, lhs := range x.Lhs {
					if i >= len(x.Rhs) {
						break
					}
					call, ok := ast.Unparen(x.Rhs[i]).(*ast.CallExpr)
					if !ok {
						continue
					}
					id, ok := ast.Unparen(call.Fun).(*ast.Ident)
					if !ok {
						continue
					}
					if b, ok := f.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
						continue
					}
					if obj := assignedObj(f, lhs); obj != nil && obj.Pos() < r.Pos() && !sortedAfter(f, obj, following) {
						report(x, "append inside map range builds an order-dependent slice; sort the keys first or sort the result")
					}
				}
			}
		case *ast.CallExpr:
			if name, ok := importedCall(f, x, "fmt"); ok {
				switch name {
				case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
					report(x, "output emitted inside map range appears in random order; sort the keys first")
				}
			} else if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
					if _, isPkg := f.Info.Uses[selRootIdent(sel)].(*types.PkgName); !isPkg {
						report(x, "output written inside map range appears in random order; sort the keys first")
					}
				}
			}
		}
		return true
	})
}

// selRootIdent returns the leftmost identifier of a selector chain.
func selRootIdent(sel *ast.SelectorExpr) *ast.Ident {
	e := ast.Unparen(sel.X)
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = ast.Unparen(x.X)
		case *ast.Ident:
			return x
		default:
			return sel.Sel // no ident root; Uses lookup will miss
		}
	}
}

// rangeVarObjs returns the objects bound by the range clause.
func rangeVarObjs(f *File, r *ast.RangeStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, e := range []ast.Expr{r.Key, r.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := f.Info.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := f.Info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// keyedByRangeVar reports whether lhs is an index expression whose index
// mentions a range variable: out[k] += v writes to the same slot whatever
// the visit order, so it is order-independent.
func keyedByRangeVar(f *File, lhs ast.Expr, rangeVars map[types.Object]bool) bool {
	ix, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(ix.Index, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok && rangeVars[f.Info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

// assignedObj resolves the variable an append result is stored into.
func assignedObj(f *File, lhs ast.Expr) types.Object {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if obj := f.Info.Uses[id]; obj != nil {
			return obj
		}
		return f.Info.Defs[id]
	}
	return nil
}

// sortedAfter reports whether a sorting call mentioning obj appears in the
// statements following the range loop — the sanctioned collect-then-sort
// idiom. A sorting call is anything from sort/slices, or a function whose
// name starts with "sort"/"Sort" (in-module helpers like sortLinks).
func sortedAfter(f *File, obj types.Object, following []ast.Stmt) bool {
	for _, st := range following {
		found := false
		ast.Inspect(st, func(c ast.Node) bool {
			call, ok := c.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			if _, ok := importedCall(f, call, "sort", "slices"); !ok && !namedSortCall(f, call) {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(a ast.Node) bool {
					if id, ok := a.(*ast.Ident); ok && f.Info.Uses[id] == obj {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// namedSortCall reports whether the callee is a function or method whose
// name marks it as a sorting helper.
func namedSortCall(f *File, call *ast.CallExpr) bool {
	fn := calleeFunc(f, call)
	return fn != nil && (strings.HasPrefix(fn.Name(), "sort") || strings.HasPrefix(fn.Name(), "Sort"))
}

// isFloatExpr reports whether the expression's type is floating point
// (including float-constrained type parameters in generic code).
func isFloatExpr(f *File, e ast.Expr) bool {
	t := f.Info.TypeOf(e)
	if t == nil {
		return false
	}
	if tp, ok := t.(*types.TypeParam); ok {
		return floatConstrained(tp)
	}
	return isFloat(t)
}
