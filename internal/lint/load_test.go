package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadBadPattern: a pattern matching no packages surfaces the go list
// failure instead of silently linting nothing.
func TestLoadBadPattern(t *testing.T) {
	_, err := Load(Options{Dir: filepath.Join("testdata", "mod"), Patterns: []string{"./no-such-dir/..."}})
	if err == nil {
		t.Fatal("Load succeeded on a pattern matching nothing")
	}
	if !strings.Contains(err.Error(), "go list") {
		t.Errorf("error = %v, want the go list invocation folded in", err)
	}
}

// TestLoadOutsideModule: a directory with no go.mod is rejected up front by
// the module-path probe.
func TestLoadOutsideModule(t *testing.T) {
	_, err := Load(Options{Dir: t.TempDir()})
	if err == nil {
		t.Fatal("Load succeeded outside a module")
	}
	if !strings.Contains(err.Error(), "not inside a Go module") {
		t.Errorf("error = %v, want the not-a-module diagnostic", err)
	}
}

// TestParseListMalformed: a truncated/garbled go list stream is reported,
// not half-consumed.
func TestParseListMalformed(t *testing.T) {
	_, _, _, err := parseList([]byte(`{"ImportPath": "x", "Dir":`))
	if err == nil {
		t.Fatal("parseList accepted malformed JSON")
	}
	if !strings.Contains(err.Error(), "decoding go list output") {
		t.Errorf("error = %v, want a decode diagnostic", err)
	}
}

// TestParseListVariants pins the stream-folding rules: dependencies and
// synthesized .test packages are skipped, the [pkg.test] variant supersedes
// the plain package as the lint target, and the plain export archive wins
// over the test variant's.
func TestParseListVariants(t *testing.T) {
	stream := `
{"ImportPath": "dep/only", "Export": "/tmp/dep.a", "DepOnly": true}
{"ImportPath": "m/a", "Export": "/tmp/a.a", "GoFiles": ["a.go"]}
{"ImportPath": "m/a [m/a.test]", "Export": "/tmp/a-test.a", "ForTest": "m/a", "GoFiles": ["a.go", "a_test.go"]}
{"ImportPath": "m/a.test", "DepOnly": false}
`
	exports, targets, order, err := parseList([]byte(stream))
	if err != nil {
		t.Fatal(err)
	}
	if got := exports["m/a"]; got != "/tmp/a.a" {
		t.Errorf("exports[m/a] = %q, want the plain archive", got)
	}
	if got := exports["dep/only"]; got != "/tmp/dep.a" {
		t.Errorf("exports[dep/only] = %q, want dependency export retained", got)
	}
	if len(order) != 1 || order[0] != "m/a" {
		t.Fatalf("order = %v, want [m/a] only", order)
	}
	if tgt := targets["m/a"]; tgt.ForTest != "m/a" || len(tgt.GoFiles) != 2 {
		t.Errorf("target = %+v, want the [m/a.test] superset variant", tgt)
	}
}

// TestCheckPackageParseError: a file the parser rejects fails the package
// with a positioned diagnostic.
func TestCheckPackageParseError(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte("package x\nfunc {\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	_, err := checkPackage(fset, exportImporter(fset, nil), "m", "m/x",
		listPkg{ImportPath: "m/x", Dir: dir, GoFiles: []string{"bad.go"}}, false)
	if err == nil {
		t.Fatal("checkPackage accepted a syntactically invalid file")
	}
	if !strings.Contains(err.Error(), "bad.go") {
		t.Errorf("error = %v, want the offending file named", err)
	}
}

// TestCheckPackageMissingExport: an import with no export archive in the
// index fails type-checking with the lookup's diagnostic.
func TestCheckPackageMissingExport(t *testing.T) {
	dir := t.TempDir()
	src := "package x\n\nimport \"some/missing/dep\"\n\nvar _ = dep.Thing\n"
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	_, err := checkPackage(fset, exportImporter(fset, map[string]string{}), "m", "m/x",
		listPkg{ImportPath: "m/x", Dir: dir, GoFiles: []string{"x.go"}}, false)
	if err == nil {
		t.Fatal("checkPackage type-checked against a missing export archive")
	}
	if !strings.Contains(err.Error(), "no export data") {
		t.Errorf("error = %v, want the missing-export diagnostic", err)
	}
}
