package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotpath-no-alloc: functions annotated //sate:hotpath, and everything
// reachable from them through the call graph, must not contain allocating
// constructs. The paper's latency claim rests on the steady-state solve
// being allocation-free; AllocsPerRun spot checks sample a handful of entry
// points, this rule closes over every function they can reach.
//
// Flagged constructs: make/new/append, slice and map composite literals,
// &T{...}, capturing closures that escape (not immediately invoked),
// interface boxing at call and conversion sites, non-constant string
// concatenation, string<->[]byte/[]rune conversions, map-entry assignment
// (may rehash), go statements, fmt calls, and calls into any external
// package outside a small no-alloc allowlist.
//
// Opt-outs use the existing //lint:ignore hotpath-no-alloc mechanism with
// extended extent semantics: a directive on (or directly above) a
// statement covers the statement's entire subtree and cuts any call edges
// inside it; a directive on a func declaration removes the whole function
// from the traversal.

const hotRule = "hotpath-no-alloc"

// hotExternAllow lists the external packages hot code may call: their
// exported call paths do not allocate (atomics, locks, scalar math,
// in-place sorts, context/time accessors).
var hotExternAllow = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync":        true,
	"sync/atomic": true,
	"time":        true,
	"sort":        true,
	"slices":      true,
	"unsafe":      true,
	"cmp":         true,
	"context":     true,
	// runtime: hot paths query GOMAXPROCS and friends; the runtime package's
	// exported query functions do not allocate.
	"runtime": true,
}

var hotpathNoAlloc = &Analyzer{
	Name: hotRule,
	Doc: "functions annotated //sate:hotpath and everything reachable from them " +
		"must be allocation-free: no make/new/append, slice/map/&T literals, " +
		"escaping closures, interface boxing, string building, fmt, or calls into " +
		"external packages beyond the no-alloc allowlist; opt cold branches out " +
		"with //lint:ignore hotpath-no-alloc on the statement or declaration",
	runProgram: func(p *Program, report func(f *File, n ast.Node, format string, args ...any)) {
		visited := map[*FuncNode]bool{}
		for _, root := range p.Nodes {
			if !root.HotRoot {
				continue
			}
			if p.Suppressed(root.File, hotRule, p.declLine(root)) {
				continue // annotated but opted out wholesale
			}
			// BFS from this root over not-yet-visited nodes.
			type item struct {
				n   *FuncNode
				via string
			}
			queue := []item{{root, root.Name}}
			visited[root] = true
			for len(queue) > 0 {
				it := queue[0]
				queue = queue[1:]
				s := &hotScanner{p: p, n: it.n, via: it.via, report: report}
				s.scanBody()
				for _, e := range it.n.Edges {
					if s.cutAt(e.Site) {
						continue // edge originates inside a suppressed extent
					}
					c := e.Callee
					if visited[c] {
						continue
					}
					if p.Suppressed(c.File, hotRule, p.declLine(c)) {
						continue // declaration-level opt-out cuts the edge
					}
					visited[c] = true
					via := it.via
					if len(strings.Split(via, " -> ")) < 5 {
						via += " -> " + c.Name
					} else if !strings.HasSuffix(via, " -> ...") {
						via += " -> ..."
					}
					queue = append(queue, item{c, via})
				}
			}
		}
	},
}

// declLine returns the line a declaration-level //lint:ignore directive
// must cover to opt node out: the func keyword's line (so the directive
// sits on the line above, typically as the last doc-comment line).
func (p *Program) declLine(n *FuncNode) int {
	return n.File.Fset.Position(n.Pos()).Line
}

// interval is a source extent excluded from the hot path: a statement-level
// directive's statement (d set) or a panic argument (d nil).
type interval struct {
	lo, hi token.Pos
	d      *directive
}

// hotScanner walks one function body flagging allocating constructs.
type hotScanner struct {
	p      *Program
	n      *FuncNode
	via    string
	report func(f *File, n ast.Node, format string, args ...any)
	cut    []interval
	// asserted marks conversions consumed by an immediate type assertion
	// (the zero-cost any(x).(T) generic-dispatch idiom).
	asserted map[ast.Expr]bool
}

// cutAt reports whether pos lies in an excluded extent. A directive-backed
// extent that cuts a call edge is doing its job, so the match marks it used.
func (s *hotScanner) cutAt(pos token.Pos) bool {
	for _, iv := range s.cut {
		if pos >= iv.lo && pos < iv.hi {
			if iv.d != nil {
				iv.d.used[hotRule] = true
			}
			return true
		}
	}
	return false
}

func (s *hotScanner) scanBody() {
	s.asserted = map[ast.Expr]bool{}
	s.scan(s.n.Body(), nil)
}

// scan walks a subtree. supp is the innermost statement-extent directive,
// nil outside any suppressed extent: findings under a directive mark it
// used instead of being reported (so a stale extent opt-out that shields
// nothing is itself flagged by unused-suppression).
func (s *hotScanner) scan(root ast.Node, supp *directive) {
	f := s.n.File
	invoked := map[*ast.FuncLit]bool{}
	callOnly := callOnlyLits(f, s.n.Body())
	ast.Inspect(root, func(c ast.Node) bool {
		if c == nil {
			return true
		}
		if lit, ok := c.(*ast.FuncLit); ok {
			// The literal's body is its own node, reached through the
			// containment edge; here only the closure value itself is
			// judged (capture => allocation), unless it cannot escape:
			// invoked in place, or bound to a local that is only ever
			// called directly.
			if !invoked[lit] && !callOnly[lit] && capturesLocals(f, lit) {
				s.flag(supp, lit, "closure captures local state and escapes; hoist it or pass state explicitly")
			}
			return false
		}
		if st, ok := c.(ast.Stmt); ok {
			if d := s.extentDirective(st); d != nil && d != supp {
				s.cut = append(s.cut, interval{st.Pos(), st.End(), d})
				s.scan(st, d)
				return false
			}
		}
		switch x := c.(type) {
		case *ast.TypeAssertExpr:
			// any(x).(T) in generic code: the conversion is eliminated
			// when T is statically known, so it is not a boxing site.
			if conv, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
				s.asserted[conv] = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := f.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					// Crash path: allocations while dying are irrelevant,
					// and nothing called from a panic argument is hot.
					s.cut = append(s.cut, interval{x.Pos(), x.End(), nil})
					return false
				}
			}
			if lit, ok := ast.Unparen(x.Fun).(*ast.FuncLit); ok {
				invoked[lit] = true
			}
			s.checkCall(x, supp)
		case *ast.DeferStmt:
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				invoked[lit] = true
			}
		case *ast.GoStmt:
			s.flag(supp, x, "go statement allocates and schedules")
		case *ast.CompositeLit:
			switch f.Info.TypeOf(x).Underlying().(type) {
			case *types.Slice:
				s.flag(supp, x, "slice literal allocates")
			case *types.Map:
				s.flag(supp, x, "map literal allocates")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					s.flag(supp, x, "&composite literal may escape to the heap")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isString(f.Info.TypeOf(x)) && f.Info.Types[x].Value == nil {
				s.flag(supp, x, "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isString(f.Info.TypeOf(x.Lhs[0])) {
				s.flag(supp, x, "string += allocates")
			}
			if x.Tok == token.ASSIGN || x.Tok == token.DEFINE {
				for _, lhs := range x.Lhs {
					if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
						if _, ok := typeUnder(f.Info.TypeOf(ix.X)).(*types.Map); ok {
							s.flag(supp, x, "map assignment may grow the table")
						}
					}
				}
			}
		}
		return true
	})
}

// extentDirective returns a directive that covers the statement's first
// line for the hot-path rule, without marking it used yet.
func (s *hotScanner) extentDirective(st ast.Stmt) *directive {
	t := s.p.supp[s.n.File]
	if t == nil {
		return nil
	}
	line := s.n.File.Fset.Position(st.Pos()).Line
	for _, l := range [2]int{line, line - 1} {
		for _, d := range t.byLine[l] {
			for _, r := range d.rules {
				if r == hotRule {
					return d
				}
			}
		}
	}
	return nil
}

// flag reports a construct, or marks the covering extent directive used.
func (s *hotScanner) flag(supp *directive, n ast.Node, what string) {
	if supp != nil {
		supp.used[hotRule] = true
		return
	}
	s.report(s.n.File, n, "%s in hot path (%s)", what, s.via)
}

func (s *hotScanner) checkCall(call *ast.CallExpr, supp *directive) {
	f := s.n.File
	if tv, ok := f.Info.Types[call.Fun]; ok && tv.IsType() {
		s.checkConversion(call, tv.Type, supp)
		return
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := f.Info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				s.flag(supp, call, "make allocates")
			case "new":
				s.flag(supp, call, "new allocates")
			case "append":
				s.flag(supp, call, "append may grow the backing array")
			}
			return
		}
	case *ast.SelectorExpr:
		if name, ok := importedCall(f, call, "fmt"); ok {
			s.flag(supp, call, "fmt."+name+" formats through reflection and allocates")
			return
		}
	}
	// External callees outside the no-alloc allowlist.
	if fn := calleeFunc(f, call); fn != nil && fn.Pkg() != nil {
		path := fn.Pkg().Path()
		if path != f.Pkg.Path() && !sameModule(f, path) && !hotExternAllow[path] {
			s.flag(supp, call, "call into "+path+"."+fn.Name()+" (not on the hot-path allowlist) may allocate")
		}
	}
	s.checkBoxing(call, supp)
}

// sameModule reports whether path belongs to the module being linted (the
// module root path is the file's import path prefix).
func sameModule(f *File, path string) bool {
	mod := f.ImportPath
	if f.RelPath != "" {
		mod = strings.TrimSuffix(f.ImportPath, "/"+f.RelPath)
	}
	return path == mod || strings.HasPrefix(path, mod+"/")
}

// calleeFunc resolves the called function object, if the callee is named.
func calleeFunc(f *File, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := f.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := f.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// checkConversion flags allocating conversions: string<->[]byte/[]rune,
// integer-to-string, and boxing into an interface type.
func (s *hotScanner) checkConversion(call *ast.CallExpr, target types.Type, supp *directive) {
	if len(call.Args) != 1 {
		return
	}
	if _, ok := target.(*types.TypeParam); ok {
		return // T(x) in generic code: resolved per instantiation, not boxing
	}
	f := s.n.File
	src := f.Info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	if f.Info.Types[call].Value != nil {
		return // constant-folded conversion
	}
	tu, su := typeUnder(target), typeUnder(src)
	switch {
	case isString(tu) && !isString(su):
		s.flag(supp, call, "conversion to string allocates")
	case isByteOrRuneSlice(tu) && isString(su):
		s.flag(supp, call, "string-to-slice conversion allocates")
	default:
		if _, ok := tu.(*types.Interface); ok && !pointerShaped(su) && !s.asserted[call] {
			if _, srcIface := su.(*types.Interface); !srcIface {
				s.flag(supp, call, "conversion boxes a value into an interface")
			}
		}
	}
}

// checkBoxing flags call arguments that box a concrete non-pointer-shaped
// value into an interface-typed parameter.
func (s *hotScanner) checkBoxing(call *ast.CallExpr, supp *directive) {
	f := s.n.File
	tv, ok := f.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	if call.Ellipsis != token.NoPos {
		return // slice passed through, no per-element boxing
	}
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= params.Len()-1 {
			pi = params.Len() - 1
		}
		if pi >= params.Len() {
			break
		}
		pt := params.At(pi).Type()
		if sig.Variadic() && pi == params.Len()-1 {
			if sl, ok := pt.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if _, ok := pt.(*types.TypeParam); ok {
			continue // generic parameter, not a boxing interface
		}
		if _, ok := typeUnder(pt).(*types.Interface); !ok {
			continue
		}
		at := f.Info.TypeOf(arg)
		if at == nil || f.Info.Types[arg].IsNil() {
			continue
		}
		au := typeUnder(at)
		if _, isIface := au.(*types.Interface); isIface {
			continue
		}
		if _, isTP := at.(*types.TypeParam); isTP {
			continue // instantiation-dependent; judged at concrete call sites
		}
		if pointerShaped(au) {
			continue
		}
		s.flag(supp, arg, "argument boxes a value into interface parameter")
	}
}

// callOnlyLits finds literals bound to a local variable that is used only
// in call position (x := func(...){...}; x(); x()): such closures never
// escape, so the compiler keeps them off the heap. Rebinding (x = other)
// or any value use (passing, storing, returning x) disqualifies the lit.
func callOnlyLits(f *File, body ast.Node) map[*ast.FuncLit]bool {
	bound := map[types.Object]*ast.FuncLit{}
	rebound := map[types.Object]bool{}
	ast.Inspect(body, func(c ast.Node) bool {
		as, ok := c.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := f.Info.Defs[id]
			if obj == nil {
				obj = f.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if lit, ok := ast.Unparen(as.Rhs[i]).(*ast.FuncLit); ok {
				if _, seen := bound[obj]; seen {
					rebound[obj] = true // second binding: a recursive rebind may escape
				} else {
					bound[obj] = lit
				}
			} else {
				rebound[obj] = true
			}
		}
		return true
	})
	// Disqualify any bound variable used outside call position.
	funPos := map[ast.Node]bool{}
	ast.Inspect(body, func(c ast.Node) bool {
		if call, ok := c.(*ast.CallExpr); ok {
			funPos[ast.Unparen(call.Fun)] = true
		}
		return true
	})
	used := map[types.Object]bool{}
	ast.Inspect(body, func(c ast.Node) bool {
		id, ok := c.(*ast.Ident)
		if !ok || funPos[id] {
			return true
		}
		if obj := f.Info.Uses[id]; obj != nil {
			used[obj] = true
		}
		return true
	})
	out := map[*ast.FuncLit]bool{}
	for obj, lit := range bound {
		if !rebound[obj] && !used[obj] {
			out[lit] = true
		}
	}
	return out
}

// capturesLocals reports whether a literal references function-local
// variables declared outside it (globals and package vars do not force a
// closure allocation: the literal compiles to a static function).
func capturesLocals(f *File, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(c ast.Node) bool {
		id, ok := c.(*ast.Ident)
		if !ok || found {
			return !found
		}
		v, ok := f.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == nil || v.Parent() == types.Universe || v.Parent() == f.Pkg.Scope() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			found = true
		}
		return true
	})
	return found
}

// typeUnder is Underlying with nil tolerance.
func typeUnder(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}

func isString(t types.Type) bool {
	b, ok := typeUnder(t).(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// pointerShaped reports whether a value of this type fits an interface's
// data word without an allocation at conversion time.
func pointerShaped(t types.Type) bool {
	switch t.(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		b := t.(*types.Basic)
		return b.Kind() == types.UnsafePointer
	}
	return false
}
