package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// Analyzers returns the full rule suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		noNakedGoroutine,
		seededRandOnly,
		noWallclockInSim,
		noFloatEquality,
		checkedErrors,
		noFmtPrintInLib,
		noDtypeLiteral,
		hotpathNoAlloc,
		mapOrderDeterminism,
		ctxPropagation,
		noDeprecatedCall,
		unusedSuppression,
	}
}

// unusedSuppression is a pseudo-rule: its findings are produced by Run
// itself after every other analyzer has had the chance to consume each
// //lint:ignore directive. Registering it here makes it toggleable and
// listable like any other rule.
var unusedSuppression = &Analyzer{
	Name: unusedRule,
	Doc: "a //lint:ignore directive that suppressed nothing in this run is a " +
		"stale exemption (or names a rule that does not exist); remove it",
}

// poolPath is the one package allowed to spawn goroutines: every other
// package must route parallelism through its deterministic worker pool.
const poolPath = "internal/par"

// wallclockDeny lists the deterministic packages where reading the wall
// clock breaks reproducibility: the simulated-time pipeline (orbit,
// topology, traffic, te, lp, gnn, autodiff, paths, graphembed), the
// solver/rules layers added in PRs 4-5, the core warm-start path (PR 6),
// internal/sim — the few sites in sim that time the *solver* (where
// wall-clock latency is the measurement itself) carry explicit reasoned
// //lint:ignore directives instead of a package-wide exemption — and
// internal/pktsim, the discrete-event packet engine, whose entire clock is
// virtual (the head of its event heap).
// baselines, experiments, controller, cmd/ and the root package remain
// exempt: there, wall-clock timing is the deliverable (figure tables,
// production control loop pacing).
var wallclockDeny = map[string]bool{
	"internal/orbit":      true,
	"internal/topology":   true,
	"internal/traffic":    true,
	"internal/te":         true,
	"internal/lp":         true,
	"internal/gnn":        true,
	"internal/autodiff":   true,
	"internal/paths":      true,
	"internal/graphembed": true,
	"internal/solve":      true,
	"internal/rules":      true,
	"internal/core":       true,
	"internal/shard":      true,
	"internal/sim":        true,
	"internal/ruledist":   true,
	"internal/pktsim":     true,
}

// deterministicPkg is the set map-order-determinism enforces: the same
// packages whose outputs must be bitwise-reproducible, which is exactly
// the wall-clock deny set (a package that may not read the clock may not
// leak map iteration order either).
var deterministicPkg = wallclockDeny

// globalRand lists the math/rand top-level functions that draw from the
// shared global source. Constructors (New, NewSource, NewZipf) are fine:
// they are how seeded *rand.Rand values get made.
var globalRand = map[string]bool{
	"ExpFloat64": true, "Float32": true, "Float64": true,
	"Int": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Intn": true,
	"NormFloat64": true, "Perm": true, "Read": true,
	"Seed": true, "Shuffle": true,
	"Uint32": true, "Uint64": true,
	// math/rand/v2 spellings.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "N": true, "Uint": true, "UintN": true,
	"Uint32N": true, "Uint64N": true,
}

// importedCall reports whether call is pkg.Name(...) where pkg is an import
// of one of the given paths, returning the selected name.
func importedCall(f *File, call *ast.CallExpr, paths ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := f.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	for _, p := range paths {
		if pn.Imported().Path() == p {
			return sel.Sel.Name, true
		}
	}
	return "", false
}

var noNakedGoroutine = &Analyzer{
	Name: "no-naked-goroutine",
	Doc: "go statements are forbidden outside internal/par and _test.go files; " +
		"all parallelism flows through the deterministic worker pool",
	run: func(f *File, report func(ast.Node, string, ...any)) {
		if f.IsTest || f.RelPath == poolPath {
			return
		}
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				report(g, "go statement outside %s; route parallelism through the worker pool", poolPath)
			}
			return true
		})
	},
}

var seededRandOnly = &Analyzer{
	Name: "seeded-rand-only",
	Doc: "top-level math/rand functions draw from the unseeded global source; " +
		"library code must thread an explicit *rand.Rand",
	run: func(f *File, report func(ast.Node, string, ...any)) {
		if f.IsTest {
			return
		}
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := importedCall(f, call, "math/rand", "math/rand/v2"); ok && globalRand[name] {
				report(call, "global rand.%s call; thread an explicit seeded *rand.Rand instead", name)
			}
			return true
		})
	},
}

var noWallclockInSim = &Analyzer{
	Name: "no-wallclock-in-sim",
	Doc: "time.Now/time.Since are forbidden in simulated-time packages " +
		"(orbit, topology, traffic, te, lp, gnn, autodiff, paths, graphembed); " +
		"time must arrive as a parameter",
	run: func(f *File, report func(ast.Node, string, ...any)) {
		if f.IsTest || !wallclockDeny[f.RelPath] {
			return
		}
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := importedCall(f, call, "time"); ok && (name == "Now" || name == "Since") {
				report(call, "time.%s in simulated-time package %s; pass time in as a parameter", name, f.RelPath)
			}
			return true
		})
	},
}

// isFloat reports whether t's underlying type is a floating-point basic type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

var noFloatEquality = &Analyzer{
	Name: "no-float-equality",
	Doc: "==/!= between two computed float expressions is almost always a bug; " +
		"comparisons against constants (exact sentinels like 0) are allowed, as are " +
		"the serial-vs-parallel equivalence tests where bitwise equality is the point",
	run: func(f *File, report func(ast.Node, string, ...any)) {
		if f.RelPath == poolPath || strings.HasSuffix(filepath.Base(f.Name), "parallel_test.go") {
			return
		}
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			x, y := f.Info.Types[be.X], f.Info.Types[be.Y]
			if x.Type == nil || y.Type == nil || !isFloat(x.Type) || !isFloat(y.Type) {
				return true
			}
			if x.Value != nil || y.Value != nil {
				return true // comparison against an exact constant sentinel
			}
			report(be, "%s on float operands; compare with a tolerance or math.Abs", be.Op)
			return true
		})
	},
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

// returnsError reports whether t (a call's result type) is or contains error.
func returnsError(t types.Type) bool {
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if types.Identical(tup.At(i).Type(), errorType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errorType)
}

// exemptWriter reports whether writing to e cannot produce an actionable
// error: os.Stdout/os.Stderr (nothing to do if the process's own stdio is
// broken), and the in-memory buffers strings.Builder and bytes.Buffer
// (documented to never return a non-nil error).
func exemptWriter(f *File, e ast.Expr) bool {
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := f.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "os" &&
				(sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr") {
				return true
			}
		}
	}
	switch typeString(f.Info.TypeOf(e)) {
	case "*strings.Builder", "strings.Builder", "*bytes.Buffer", "bytes.Buffer":
		return true
	}
	return false
}

// typeString renders a type, or "" for nil.
func typeString(t types.Type) string {
	if t == nil {
		return ""
	}
	return t.String()
}

// errExempt reports whether a discarded error from this call is exempt by
// design: prints to process stdio, writes into never-failing in-memory
// buffers, and fmt.Fprint* into a *bufio.Writer, whose error is sticky and
// surfaced by the mandatory Flush at the end (Flush itself is not exempt).
func errExempt(f *File, call *ast.CallExpr) bool {
	if name, ok := importedCall(f, call, "fmt"); ok {
		switch name {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			if len(call.Args) > 0 {
				if exemptWriter(f, call.Args[0]) || typeString(f.Info.TypeOf(call.Args[0])) == "*bufio.Writer" {
					return true
				}
			}
		}
		return false
	}
	// Write methods on the in-memory buffers.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return exemptWriter(f, sel.X)
		}
	}
	return false
}

var checkedErrors = &Analyzer{
	Name: "checked-errors",
	Doc: "a call whose returned error is silently discarded as a bare statement " +
		"must handle it or assign it away explicitly (_ =); defers, stdio prints, " +
		"in-memory buffer writes, and sticky-error bufio prints are exempt",
	run: func(f *File, report func(ast.Node, string, ...any)) {
		if f.IsTest {
			return
		}
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if returnsError(f.Info.Types[call].Type) && !errExempt(f, call) {
				report(stmt, "returned error is discarded; handle it or assign to _ explicitly")
			}
			return true
		})
	},
}

// floatConstrained reports whether the type parameter's constraint includes
// a floating-point term (e.g. the autodiff Float = float32 | float64 set).
func floatConstrained(tp *types.TypeParam) bool {
	iface, ok := tp.Constraint().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	for i := 0; i < iface.NumEmbeddeds(); i++ {
		switch e := iface.EmbeddedType(i).(type) {
		case *types.Union:
			for j := 0; j < e.Len(); j++ {
				if isFloat(e.Term(j).Type()) {
					return true
				}
			}
		default:
			if isFloat(e) {
				return true
			}
		}
	}
	return false
}

var noDtypeLiteral = &Analyzer{
	Name: "no-dtype-literal",
	Doc: "a float64(x)/float32(x) conversion of a float-constrained type parameter " +
		"pins generic kernel code to one dtype and silently defeats the float32 " +
		"inference path; route scalar math through the sanctioned helpers " +
		"(autodiff's f64/ToFloat64) instead",
	run: func(f *File, report func(ast.Node, string, ...any)) {
		if f.IsTest {
			return // equivalence tests widen T deliberately
		}
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := f.Info.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true // a call, not a conversion
			}
			b, ok := tv.Type.(*types.Basic)
			if !ok || b.Info()&types.IsFloat == 0 {
				return true
			}
			tp, ok := f.Info.TypeOf(call.Args[0]).(*types.TypeParam)
			if !ok || !floatConstrained(tp) {
				return true
			}
			report(call, "%s(...) of type parameter %s pins the dtype in generic code; use the sanctioned scalar helpers", b.Name(), tp.Obj().Name())
			return true
		})
	},
}

var noFmtPrintInLib = &Analyzer{
	Name: "no-fmt-print-in-lib",
	Doc: "fmt.Print*/println write to process stdout/stderr from library code; " +
		"take an io.Writer instead (cmd/ and examples/ are exempt)",
	run: func(f *File, report func(ast.Node, string, ...any)) {
		if f.IsTest {
			return
		}
		// Library scope: the module root package and everything under
		// internal/. Binaries (cmd/, examples/) own their stdout.
		if f.RelPath != "" && !strings.HasPrefix(f.RelPath, "internal/") {
			return
		}
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := importedCall(f, call, "fmt"); ok &&
				(name == "Print" || name == "Printf" || name == "Println") {
				report(call, "fmt.%s in library package %s; write to an io.Writer instead", name, f.ImportPath)
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok {
				if b, ok := f.Info.Uses[id].(*types.Builtin); ok &&
					(b.Name() == "print" || b.Name() == "println") {
					report(call, "builtin %s in library package %s; write to an io.Writer instead", b.Name(), f.ImportPath)
				}
			}
			return true
		})
	},
}
