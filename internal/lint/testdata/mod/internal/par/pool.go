// Package par is the fixture stand-in for the real worker pool: go
// statements are legal here and nowhere else.
package par

// Go runs fn on its own goroutine and waits for it.
func Go(fn func()) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	<-done
}
