package lib

// Tidy is fully compliant; its directives are the unused-suppression
// fixtures: one shields nothing, one names a rule that does not exist.
func Tidy(n int) int {
	//lint:ignore no-float-equality fixture: stale, shields nothing
	m := n + 1
	//lint:ignore not-a-rule fixture: unknown rule name
	return m * 2
}
