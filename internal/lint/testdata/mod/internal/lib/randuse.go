package lib

import "math/rand"

// GlobalDraw uses the global source twice: flagged twice.
func GlobalDraw(xs []int) float64 {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	return rand.Float64()
}

// SeededDraw is the approved pattern.
func SeededDraw(rng *rand.Rand) float64 {
	return rng.Float64()
}

// NewRNG is fine: constructors do not touch the global source.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
