package lib

// OldAdd is the pre-redesign spelling.
//
// Deprecated: use NewAdd instead.
func OldAdd(a, b int) int { return NewAdd(a, b) }

// NewAdd is the replacement API.
func NewAdd(a, b int) int { return a + b }

// oldHelper is deprecated without being exported.
//
// Deprecated: use NewAdd.
func oldHelper() int { return 0 }

// CallsDeprecated exercises the violations: a direct call and a captured
// function value, each flagged once.
func CallsDeprecated() int {
	total := OldAdd(1, 2) // flagged: direct call
	f := OldAdd           // flagged: captured as a value
	total += f(3, 4)
	total += oldHelper() // flagged: unexported deprecated callee
	return total
}

// CallsReplacement is compliant: only the replacement is used, and the
// pinned legacy behaviour carries a reasoned suppression.
func CallsReplacement() int {
	total := NewAdd(1, 2)
	//lint:ignore no-deprecated-call pinning the legacy wrapper's behaviour
	total += OldAdd(5, 6)
	return total
}
