package lib

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

func mayFail() error { return nil }

// Dropped discards returned errors: flagged twice (plain error and a
// tuple containing one).
func Dropped(w io.Writer) {
	mayFail()
	w.Write([]byte("x"))
}

// Handled shows the accepted spellings: explicit discard, real handling,
// defers, never-failing buffer writes, stdio prints, and sticky-error
// bufio prints followed by a checked Flush.
func Handled(b *strings.Builder, bw *bufio.Writer) error {
	_ = mayFail()
	defer mayFail()
	b.WriteString("x")
	fmt.Fprintln(os.Stdout, "stdio write")
	fmt.Fprintf(bw, "buffered %d", 1)
	if err := bw.Flush(); err != nil {
		return err
	}
	return mayFail()
}

// FlushDropped discards the one bufio call that must be checked: flagged.
func FlushDropped(bw *bufio.Writer) {
	bw.Flush()
}
