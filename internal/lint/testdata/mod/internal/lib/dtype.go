package lib

// dtype fixture: conversions of float-constrained type parameters.

type floaty interface{ float32 | float64 }

// Widen pins the dtype with a float64 literal conversion: flagged.
func Widen[T floaty](x T) float64 {
	return float64(x)
}

// Narrow pins the dtype with a float32 conversion: flagged.
func Narrow[T floaty](x T) float32 {
	return float32(x)
}

// WidenSuppressed is the sanctioned funnel, using the escape hatch.
func WidenSuppressed[T floaty](x T) float64 {
	//lint:ignore no-dtype-literal fixture: the one sanctioned widening helper
	return float64(x)
}

// ToT converts toward the type parameter: allowed (how literals enter T).
func ToT[T floaty](x float64) T { return T(x) }

// Plain is a non-generic conversion: allowed.
func Plain(x float64) float32 { return float32(x) }

// Whole converts a non-float type parameter: allowed (nothing to defeat).
func Whole[T ~int](x T) float64 { return float64(x) }
