package lib

import (
	"fmt"
	"io"
)

// Shout prints to process stdout from library code: flagged twice.
func Shout(msg string) {
	fmt.Println(msg)
	println(msg)
}

// ToWriter is the approved pattern: an explicit destination.
func ToWriter(w io.Writer, msg string) {
	//lint:ignore checked-errors fixture: demo writer, error unactionable
	fmt.Fprintln(w, msg)
}
