package lib

// Spawn launches a naked goroutine: flagged.
func Spawn(fn func()) {
	go fn()
}

// SpawnSuppressed uses the escape hatch.
func SpawnSuppressed(fn func()) {
	//lint:ignore no-naked-goroutine fixture: lifecycle goroutine
	go fn()
}

// SpawnBadDirective has a directive without a reason: the directive is
// flagged and does not suppress the goroutine.
func SpawnBadDirective(fn func()) {
	//lint:ignore no-naked-goroutine
	go fn()
}
