package lib

import "context"

// ctxLeaf consumes the propagated context.
func ctxLeaf(ctx context.Context) bool {
	return ctx.Err() == nil
}

// freshLookup is a ctx-less helper that manufactures its own context.
func freshLookup() bool {
	return ctxLeaf(context.Background())
}

// RemakesContext builds a fresh context even though one is in scope.
func RemakesContext(ctx context.Context) bool {
	if ctx.Err() != nil {
		return false
	}
	return ctxLeaf(context.Background())
}

// IgnoresContext promises propagation its body never delivers.
func IgnoresContext(ctx context.Context, n int) int {
	return n * 2
}

// DropsThroughChain calls a ctx-less chain that makes a fresh context.
func DropsThroughChain(ctx context.Context) bool {
	ok := ctxLeaf(ctx)
	return ok && freshLookup()
}

// Propagates threads the context down correctly.
func Propagates(ctx context.Context) bool {
	return ctxLeaf(ctx)
}

// DetachedProbe drops into a context-free helper by documented design.
func DetachedProbe(ctx context.Context) bool {
	if ctx.Err() != nil {
		return false
	}
	//lint:ignore ctx-propagation fixture: the audit helper is context-free by design
	return freshLookup()
}
