package lib

// buildTable allocates the lookup table once at startup; the declaration
// directive removes it from the hot traversal entirely.
//
//lint:ignore hotpath-no-alloc fixture: startup-only table build
func buildTable() []int {
	return make([]int, 64)
}

// hotHelper is reached transitively from HotStep.
func hotHelper(xs []int, v int) []int {
	return append(xs, v)
}

// HotStep is the fixture's annotated hot entry point.
//
//sate:hotpath fixture hot root
func HotStep(xs []int, v int) []int {
	buf := make([]int, 8)
	buf[0] = v
	//lint:ignore hotpath-no-alloc fixture: warm-up branch, runs once then reuses
	scratch := make([]int, v)
	_ = scratch
	tbl := buildTable()
	_ = tbl
	return hotHelper(xs, buf[0])
}
