package lib

// Eq compares computed floats: flagged.
func Eq(a, b float64) bool {
	return a == b
}

// Neq compares computed float32s: flagged.
func Neq(a, b float32) bool {
	return a != b
}

// Sentinel compares against an exact constant: allowed.
func Sentinel(a float64) bool {
	return a == 0
}

// Ints compares integers: allowed.
func Ints(a, b int) bool {
	return a == b
}

// EqSuppressed documents an intentional bitwise comparison.
func EqSuppressed(a, b float64) bool {
	//lint:ignore no-float-equality fixture: bitwise equality intended
	return a == b
}
