// Package te exercises the map-order-determinism fixtures: it sits in a
// deterministic package directory, so map ranges with order-dependent
// bodies are flagged.
package te

import (
	"sort"
	"strings"
)

// SumLoads accumulates floats in map iteration order (nondeterministic).
func SumLoads(loads map[string]float64) float64 {
	total := 0.0
	for _, v := range loads {
		total += v
	}
	return total
}

// CollectKeys appends in map order without sorting afterwards.
func CollectKeys(loads map[string]float64) []string {
	var keys []string
	for k := range loads {
		keys = append(keys, k)
	}
	return keys
}

// RenderLoads writes entries in map order.
func RenderLoads(loads map[string]float64, b *strings.Builder) {
	for k := range loads {
		b.WriteString(k)
	}
}

// SumSorted is the sanctioned idiom: collect the keys, sort, then fold.
func SumSorted(loads map[string]float64) float64 {
	keys := make([]string, 0, len(loads))
	for k := range loads {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += loads[k]
	}
	return total
}

// ScaleLoads writes through the range key, which lands in the same slot
// whatever the visit order.
func ScaleLoads(in, out map[string]float64) {
	for k, v := range in {
		out[k] += v * 0.5
	}
}

// SumTolerant documents why unsorted accumulation is acceptable here.
func SumTolerant(loads map[string]float64) float64 {
	total := 0.0
	for _, v := range loads {
		//lint:ignore map-order-determinism fixture: result is tolerance-checked downstream
		total += v
	}
	return total
}
