// Package orbit sits at a deny-listed RelPath for no-wallclock-in-sim.
package orbit

import "time"

// Epoch reads the wall clock: flagged.
func Epoch() time.Time {
	return time.Now()
}

// Age reads the wall clock: flagged.
func Age(t time.Time) time.Duration {
	return time.Since(t)
}

// SuppressedAge documents an exception.
func SuppressedAge(t time.Time) time.Duration {
	//lint:ignore no-wallclock-in-sim fixture: documented wall-clock exception
	return time.Since(t)
}

// Parameterised is the approved pattern: time arrives as a parameter.
func Parameterised(now, t time.Time) time.Duration {
	return now.Sub(t)
}
