// Command tool shows which rules still apply in binaries: printing and
// wall-clock are fine here, naked goroutines are not.
package main

import (
	"fmt"
	"time"
)

func main() {
	fmt.Println("printing from cmd is fine", time.Now())
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
