package lint

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// The fixture module under testdata/mod contains one small source file per
// rule with deliberate violations, approved patterns, and //lint:ignore
// suppressions. Loading it shells out to `go list -export`, so do it once.
var (
	fixtureOnce     sync.Once
	fixtureFindings []Finding
	fixtureErr      error
)

func fixture(t *testing.T) []Finding {
	t.Helper()
	fixtureOnce.Do(func() {
		files, err := Load(Options{Dir: filepath.Join("testdata", "mod")})
		if err != nil {
			fixtureErr = err
			return
		}
		fixtureFindings = Run(files, Analyzers())
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureFindings
}

// key renders a finding as "relpath:line:col" with forward slashes,
// relative to the fixture module root.
func key(t *testing.T, f Finding) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "mod"))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := filepath.Rel(root, f.Pos.Filename)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%s:%d:%d", filepath.ToSlash(rel), f.Pos.Line, f.Pos.Column)
}

// ruleFindings filters the fixture findings down to one rule.
func ruleFindings(t *testing.T, rule string) []string {
	t.Helper()
	var got []string
	for _, f := range fixture(t) {
		if f.Rule == rule {
			got = append(got, key(t, f))
		}
	}
	return got
}

// wantExact asserts the exact diagnostic positions for one rule. The
// fixture files also contain suppressed and compliant variants of each
// violation, so an exact match doubles as the suppression test.
func wantExact(t *testing.T, rule string, want ...string) {
	t.Helper()
	got := ruleFindings(t, rule)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("%s findings:\ngot  %v\nwant %v", rule, got, want)
	}
}

func TestNoNakedGoroutine(t *testing.T) {
	wantExact(t, "no-naked-goroutine",
		"cmd/tool/main.go:13:2",      // binaries are not exempt
		"internal/lib/spawn.go:5:2",  // plain violation
		"internal/lib/spawn.go:18:2", // malformed directive does not suppress
	)
	// internal/par (line 8 of pool.go) and suppressed line 11 of spawn.go
	// must be absent — covered by the exact match above.
}

func TestSeededRandOnly(t *testing.T) {
	wantExact(t, "seeded-rand-only",
		"internal/lib/randuse.go:7:2", // rand.Shuffle
		"internal/lib/randuse.go:8:9", // rand.Float64
	)
}

func TestNoWallclockInSim(t *testing.T) {
	wantExact(t, "no-wallclock-in-sim",
		"internal/orbit/clock.go:8:9",  // time.Now
		"internal/orbit/clock.go:13:9", // time.Since
	)
	// cmd/tool calls time.Now too: allowed outside the deny-listed
	// packages, so it must not appear — covered by the exact match.
}

func TestNoFloatEquality(t *testing.T) {
	wantExact(t, "no-float-equality",
		"internal/lib/floateq.go:5:9",  // float64 ==
		"internal/lib/floateq.go:10:9", // float32 !=
	)
}

func TestCheckedErrors(t *testing.T) {
	wantExact(t, "checked-errors",
		"internal/lib/errs.go:16:2", // bare error-returning call
		"internal/lib/errs.go:17:2", // io.Writer.Write tuple
		"internal/lib/errs.go:37:2", // bufio Flush is never exempt
	)
}

func TestNoFmtPrintInLib(t *testing.T) {
	wantExact(t, "no-fmt-print-in-lib",
		"internal/lib/printy.go:10:2", // fmt.Println
		"internal/lib/printy.go:11:2", // builtin println
	)
}

func TestNoDtypeLiteral(t *testing.T) {
	wantExact(t, "no-dtype-literal",
		"internal/lib/dtype.go:9:9",  // float64(T)
		"internal/lib/dtype.go:14:9", // float32(T)
	)
	// The suppressed widening, conversions toward the type parameter,
	// non-generic conversions, and non-float constraints must all be
	// absent — covered by the exact match.
}

func TestMalformedDirective(t *testing.T) {
	wantExact(t, directiveRule,
		"internal/lib/spawn.go:17:2", // //lint:ignore without a reason
	)
}

func TestHotpathNoAlloc(t *testing.T) {
	wantExact(t, "hotpath-no-alloc",
		"internal/lib/hot.go:13:9", // append in hotHelper, reached transitively
		"internal/lib/hot.go:20:9", // make directly in the annotated root
	)
	// The statement-suppressed warm-up make and everything behind the
	// decl-suppressed buildTable edge must be absent — and because both
	// directives cut real findings, neither shows up as unused below.
}

func TestMapOrderDeterminism(t *testing.T) {
	wantExact(t, "map-order-determinism",
		"internal/te/maporder.go:15:3", // float += in map range
		"internal/te/maporder.go:24:3", // append without a following sort
		"internal/te/maporder.go:32:3", // WriteString emits in map order
	)
	// SumSorted (collect-sort-fold), ScaleLoads (keyed write), and the
	// suppressed SumTolerant accumulation must all be absent.
}

func TestCtxPropagation(t *testing.T) {
	wantExact(t, "ctx-propagation",
		"internal/lib/ctxprop.go:20:17", // context.Background with ctx in scope
		"internal/lib/ctxprop.go:24:53", // unused ctx parameter
		"internal/lib/ctxprop.go:31:15", // chain drop through freshLookup
	)
	// Propagates (pass-through), freshLookup itself (no ctx in scope), and
	// the suppressed DetachedProbe drop must all be absent.
}

func TestNoDeprecatedCall(t *testing.T) {
	wantExact(t, "no-deprecated-call",
		"internal/lib/deprecated.go:19:11", // direct call of OldAdd
		"internal/lib/deprecated.go:20:7",  // OldAdd captured as a value
		"internal/lib/deprecated.go:22:11", // unexported deprecated callee
	)
	// The declarations themselves, the wrapper body calling its own
	// replacement, CallsReplacement's NewAdd use, and the suppressed
	// legacy-pinning call must all be absent.
}

func TestUnusedSuppression(t *testing.T) {
	wantExact(t, "unused-suppression",
		"internal/lib/unused.go:6:2", // stale: shields no finding
		"internal/lib/unused.go:8:2", // names a rule that does not exist
	)
	// Every other directive in the fixture tree suppresses a live finding
	// (or cuts a live call-graph edge), so exactly these two surface.
}

// TestFindingFormat pins the rendered diagnostic shape: file:line:col [rule].
func TestFindingFormat(t *testing.T) {
	for _, f := range fixture(t) {
		if f.Rule != "no-naked-goroutine" || !strings.HasSuffix(filepath.ToSlash(f.Pos.Filename), "lib/spawn.go") {
			continue
		}
		got := f.String()
		want := fmt.Sprintf("%s:5:2: [no-naked-goroutine] go statement outside internal/par; route parallelism through the worker pool", f.Pos.Filename)
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
		return
	}
	t.Fatal("expected spawn.go finding not present")
}

func TestSelect(t *testing.T) {
	all := Analyzers()
	only, err := Select(all, "seeded-rand-only,no-float-equality", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(only) != 2 || only[0].Name != "seeded-rand-only" || only[1].Name != "no-float-equality" {
		t.Fatalf("only = %v", names(only))
	}
	skip, err := Select(all, "", "checked-errors")
	if err != nil {
		t.Fatal(err)
	}
	if len(skip) != len(all)-1 {
		t.Fatalf("skip = %v", names(skip))
	}
	for _, a := range skip {
		if a.Name == "checked-errors" {
			t.Fatal("checked-errors not skipped")
		}
	}
	if _, err := Select(all, "no-such-rule", ""); err == nil {
		t.Fatal("unknown rule silently accepted")
	}
}

func names(as []*Analyzer) []string {
	var out []string
	for _, a := range as {
		out = append(out, a.Name)
	}
	return out
}

// TestRuleToggling proves each analyzer can run in isolation: running only
// one rule yields exactly that rule's findings.
func TestRuleToggling(t *testing.T) {
	files, err := Load(Options{Dir: filepath.Join("testdata", "mod")})
	if err != nil {
		t.Fatal(err)
	}
	only, err := Select(Analyzers(), "no-wallclock-in-sim", "")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Run(files, only) {
		if f.Rule != "no-wallclock-in-sim" && f.Rule != directiveRule {
			t.Errorf("unexpected rule %s at %s", f.Rule, f.Pos)
		}
	}
}
