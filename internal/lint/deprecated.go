package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// no-deprecated-call pins the tree at zero references to in-module
// functions whose doc comment carries a "Deprecated:" paragraph (the
// standard Go convention). The wrappers themselves may stay for
// out-of-tree callers, but nothing in this module — tests included — may
// call them or capture them as values: the doc names the replacement.
//
// A deliberate exception (e.g. the test that pins a wrapper's behaviour)
// carries an explicit //lint:ignore no-deprecated-call <reason> directive.
var noDeprecatedCall = &Analyzer{
	Name: "no-deprecated-call",
	Doc: "in-module callers must use the replacement named in a deprecated " +
		"function's doc comment, not the deprecated wrapper",
	runProgram: runNoDeprecatedCall,
}

// isDeprecatedDoc reports the standard deprecation convention: a doc
// paragraph line starting with "Deprecated:".
func isDeprecatedDoc(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, line := range strings.Split(doc.Text(), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "Deprecated:") {
			return true
		}
	}
	return false
}

func runNoDeprecatedCall(p *Program, report func(f *File, n ast.Node, format string, args ...any)) {
	// Pass 1: collect the deprecated in-module declarations (API lives in
	// non-test files).
	deprecated := map[string]string{} // funcKey -> display name
	for _, f := range p.Files {
		for _, d := range f.Ast.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !isDeprecatedDoc(fd.Doc) {
				continue
			}
			obj, _ := f.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			deprecated[funcKey(obj)] = declName(f, fd)
		}
	}
	if len(deprecated) == 0 {
		return
	}
	// Pass 2: flag every use — call or captured value, tests included. The
	// declaration itself is a Def, not a Use, so it is never flagged; the
	// wrapper's body referencing the replacement is equally clean.
	for _, f := range p.All {
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := f.Info.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			if name, isDep := deprecated[funcKey(fn)]; isDep {
				report(f, id, "use of deprecated %s; its doc comment names the replacement", name)
			}
			return true
		})
	}
}
