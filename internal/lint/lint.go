// Package lint implements satelint, the project's static-analysis suite.
// It enforces the determinism and concurrency invariants the SaTE
// reproduction depends on — all parallelism goes through the internal/par
// pool, randomness flows through explicit seeded *rand.Rand values, and
// simulated-time packages never read the wall clock — plus general hygiene
// rules (discarded errors, float equality, stray prints in library code).
//
// The suite is built purely on the standard library (go/ast, go/parser,
// go/token, go/types); package resolution shells out to the go command for
// export data instead of depending on golang.org/x/tools.
//
// A finding can be suppressed with a directive comment on the same line or
// the line directly above it:
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// The reason is mandatory; a directive without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the diagnostic as "file:line:col: [rule] message".
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// Analyzer is one named, individually toggleable rule.
type Analyzer struct {
	Name string
	Doc  string
	run  func(f *File, report func(n ast.Node, format string, args ...any))
}

// directiveRule is the pseudo-rule under which malformed //lint:ignore
// directives are reported.
const directiveRule = "lint-directive"

// Run applies the analyzers to every file and returns the unsuppressed
// findings sorted by position.
func Run(files []*File, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, f := range files {
		ignored, bad := suppressions(f)
		out = append(out, bad...)
		for _, a := range analyzers {
			a.run(f, func(n ast.Node, format string, args ...any) {
				pos := f.Fset.Position(n.Pos())
				if ignored[pos.Line][a.Name] || ignored[pos.Line-1][a.Name] {
					return
				}
				out = append(out, Finding{Pos: pos, Rule: a.Name, Msg: fmt.Sprintf(format, args...)})
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// suppressions scans a file's comments for //lint:ignore directives. It
// returns a map from line number to the set of rules suppressed on that
// line (a directive covers its own line and the one below it), plus
// findings for malformed directives.
func suppressions(f *File) (map[int]map[string]bool, []Finding) {
	ignored := map[int]map[string]bool{}
	var bad []Finding
	for _, cg := range f.Ast.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
			if !ok {
				continue
			}
			pos := f.Fset.Position(c.Pos())
			fields := strings.Fields(text)
			if len(fields) < 2 {
				bad = append(bad, Finding{
					Pos:  pos,
					Rule: directiveRule,
					Msg:  "malformed directive: want //lint:ignore <rule>[,<rule>] <reason>",
				})
				continue
			}
			rules := ignored[pos.Line]
			if rules == nil {
				rules = map[string]bool{}
				ignored[pos.Line] = rules
			}
			for _, r := range strings.Split(fields[0], ",") {
				rules[r] = true
			}
		}
	}
	return ignored, bad
}

// Select returns the analyzers chosen by the only/skip lists (comma- or
// space-separated rule names); an empty only-list means all. Unknown names
// are an error so typos cannot silently disable a gate.
func Select(all []*Analyzer, only, skip string) ([]*Analyzer, error) {
	names := map[string]*Analyzer{}
	for _, a := range all {
		names[a.Name] = a
	}
	parse := func(s string) (map[string]bool, error) {
		set := map[string]bool{}
		for _, f := range strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ' ' }) {
			if names[f] == nil {
				return nil, fmt.Errorf("lint: unknown rule %q", f)
			}
			set[f] = true
		}
		return set, nil
	}
	onlySet, err := parse(only)
	if err != nil {
		return nil, err
	}
	skipSet, err := parse(skip)
	if err != nil {
		return nil, err
	}
	var out []*Analyzer
	for _, a := range all {
		if len(onlySet) > 0 && !onlySet[a.Name] {
			continue
		}
		if skipSet[a.Name] {
			continue
		}
		out = append(out, a)
	}
	return out, nil
}
