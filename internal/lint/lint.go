// Package lint implements satelint, the project's static-analysis suite.
// It enforces the determinism and concurrency invariants the SaTE
// reproduction depends on — all parallelism goes through the internal/par
// pool, randomness flows through explicit seeded *rand.Rand values, and
// simulated-time packages never read the wall clock — plus general hygiene
// rules (discarded errors, float equality, stray prints in library code).
//
// Beyond per-file AST checks, the suite builds a whole-program call graph
// (see callgraph.go) and runs call-graph-aware rules on it: functions
// annotated //sate:hotpath and everything reachable from them must be
// allocation-free (hotpath-no-alloc), map iteration in deterministic
// packages must not accumulate order-dependent state (map-order-
// determinism), and a context.Context received by a function must not be
// dropped on its way down a call chain (ctx-propagation).
//
// The suite is built purely on the standard library (go/ast, go/parser,
// go/token, go/types); package resolution shells out to the go command for
// export data instead of depending on golang.org/x/tools.
//
// A finding can be suppressed with a directive comment on the same line or
// the line directly above it:
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// The reason is mandatory; a directive without one is itself reported. For
// the hot-path rule a directive placed on a statement additionally covers
// the statement's whole extent, and one placed on a func declaration opts
// the entire function (and every call made from it) out of the traversal.
// A suppression that no longer matches any finding is reported by the
// unused-suppression pseudo-rule so stale exemptions cannot accumulate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the diagnostic as "file:line:col: [rule] message".
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// Analyzer is one named, individually toggleable rule. Per-file rules set
// run; whole-program rules set runProgram and receive the call graph.
// A pseudo-rule (unused-suppression) may set neither: its findings are
// produced by Run itself.
type Analyzer struct {
	Name       string
	Doc        string
	run        func(f *File, report func(n ast.Node, format string, args ...any))
	runProgram func(p *Program, report func(f *File, n ast.Node, format string, args ...any))
}

// directiveRule is the pseudo-rule under which malformed //lint:ignore
// directives are reported.
const directiveRule = "lint-directive"

// unusedRule is the pseudo-rule under which stale suppressions are
// reported; it is registered as a toggleable analyzer in Analyzers.
const unusedRule = "unused-suppression"

// directive is one parsed //lint:ignore comment.
type directive struct {
	pos   token.Position
	rules []string        // rule names, declaration order
	used  map[string]bool // rules that actually suppressed something
}

// suppTable holds a file's parsed directives with usage tracking.
type suppTable struct {
	byLine map[int][]*directive
	list   []*directive
}

// suppressed reports whether rule is suppressed at line (a directive
// covers its own line and the line below it), marking the matching
// directive as used.
func (t *suppTable) suppressed(rule string, line int) bool {
	for _, l := range [2]int{line, line - 1} {
		for _, d := range t.byLine[l] {
			for _, r := range d.rules {
				if r == rule {
					d.used[rule] = true
					return true
				}
			}
		}
	}
	return false
}

// Run applies the analyzers to every file and returns the unsuppressed
// findings sorted by position.
func Run(files []*File, analyzers []*Analyzer) []Finding {
	var out []Finding
	tables := map[*File]*suppTable{}
	for _, f := range files {
		t, bad := buildSuppTable(f)
		tables[f] = t
		out = append(out, bad...)
	}

	reporter := func(f *File, rule string) func(n ast.Node, format string, args ...any) {
		return func(n ast.Node, format string, args ...any) {
			pos := f.Fset.Position(n.Pos())
			if tables[f].suppressed(rule, pos.Line) {
				return
			}
			out = append(out, Finding{Pos: pos, Rule: rule, Msg: fmt.Sprintf(format, args...)})
		}
	}

	active := map[string]bool{directiveRule: true}
	needProgram := false
	for _, a := range analyzers {
		active[a.Name] = true
		if a.runProgram != nil {
			needProgram = true
		}
	}
	for _, f := range files {
		for _, a := range analyzers {
			if a.run != nil {
				a.run(f, reporter(f, a.Name))
			}
		}
	}
	if needProgram {
		prog := BuildProgram(files)
		prog.supp = tables
		for _, a := range analyzers {
			if a.runProgram != nil {
				rule := a.Name
				a.runProgram(prog, func(f *File, n ast.Node, format string, args ...any) {
					reporter(f, rule)(n, format, args...)
				})
			}
		}
	}

	// Stale-suppression pass: a directive rule that is active in this
	// run but suppressed nothing is a stale exemption; a rule name no
	// analyzer has ever carried is a typo. Rules that exist but were
	// deselected this run are left alone — we cannot judge them.
	if active[unusedRule] {
		known := knownRules()
		for _, f := range files {
			for _, d := range tables[f].list {
				for _, r := range d.rules {
					if !known[r] {
						out = append(out, Finding{
							Pos:  d.pos,
							Rule: unusedRule,
							Msg:  fmt.Sprintf("directive names unknown rule %q", r),
						})
						continue
					}
					if active[r] && !d.used[r] {
						out = append(out, Finding{
							Pos:  d.pos,
							Rule: unusedRule,
							Msg:  fmt.Sprintf("suppression of %s matches no finding; remove the stale directive", r),
						})
					}
				}
			}
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// knownRules returns every rule name any analyzer carries, plus the
// pseudo-rules, for typo detection in directives.
func knownRules() map[string]bool {
	known := map[string]bool{directiveRule: true, unusedRule: true}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	return known
}

// buildSuppTable scans a file's comments for //lint:ignore directives,
// returning the parsed table plus findings for malformed directives.
func buildSuppTable(f *File) (*suppTable, []Finding) {
	t := &suppTable{byLine: map[int][]*directive{}}
	var bad []Finding
	for _, cg := range f.Ast.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
			if !ok {
				continue
			}
			pos := f.Fset.Position(c.Pos())
			fields := strings.Fields(text)
			if len(fields) < 2 {
				bad = append(bad, Finding{
					Pos:  pos,
					Rule: directiveRule,
					Msg:  "malformed directive: want //lint:ignore <rule>[,<rule>] <reason>",
				})
				continue
			}
			d := &directive{pos: pos, rules: strings.Split(fields[0], ","), used: map[string]bool{}}
			t.byLine[pos.Line] = append(t.byLine[pos.Line], d)
			t.list = append(t.list, d)
		}
	}
	return t, bad
}

// Select returns the analyzers chosen by the only/skip lists (comma- or
// space-separated rule names); an empty only-list means all. Unknown names
// are an error so typos cannot silently disable a gate.
func Select(all []*Analyzer, only, skip string) ([]*Analyzer, error) {
	names := map[string]*Analyzer{}
	for _, a := range all {
		names[a.Name] = a
	}
	parse := func(s string) (map[string]bool, error) {
		set := map[string]bool{}
		for _, f := range strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ' ' }) {
			if names[f] == nil {
				return nil, fmt.Errorf("lint: unknown rule %q", f)
			}
			set[f] = true
		}
		return set, nil
	}
	onlySet, err := parse(only)
	if err != nil {
		return nil, err
	}
	skipSet, err := parse(skip)
	if err != nil {
		return nil, err
	}
	var out []*Analyzer
	for _, a := range all {
		if len(onlySet) > 0 && !onlySet[a.Name] {
			continue
		}
		if skipSet[a.Name] {
			continue
		}
		out = append(out, a)
	}
	return out, nil
}
