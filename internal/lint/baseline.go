package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Baseline support for incremental adoption: a committed JSON file listing
// known findings that are tolerated until paid down. Findings are matched
// by (module-relative path, rule, message) — line numbers are deliberately
// excluded so unrelated edits do not invalidate entries. The baseline is a
// multiset: two identical findings need two entries.

// BaselineEntry is one tolerated finding.
type BaselineEntry struct {
	File string `json:"file"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

// Baseline is the committed set of tolerated findings.
type Baseline struct {
	Findings []BaselineEntry `json:"findings"`
}

// LoadBaseline reads a baseline file; a missing file is an empty baseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("lint: reading baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	return &b, nil
}

// WriteBaseline writes the findings as a baseline file, with paths made
// relative to root.
func WriteBaseline(path, root string, findings []Finding) error {
	b := Baseline{Findings: []BaselineEntry{}}
	for _, f := range findings {
		b.Findings = append(b.Findings, BaselineEntry{
			File: relSlash(root, f.Pos.Filename),
			Rule: f.Rule,
			Msg:  f.Msg,
		})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Rule != c.Rule {
			return a.Rule < c.Rule
		}
		return a.Msg < c.Msg
	})
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter removes baselined findings, returning the remainder plus the
// count of baseline entries that matched nothing (stale entries a clean-up
// should drop).
func (b *Baseline) Filter(root string, findings []Finding) (kept []Finding, stale int) {
	budget := map[BaselineEntry]int{}
	for _, e := range b.Findings {
		budget[e]++
	}
	for _, f := range findings {
		e := BaselineEntry{File: relSlash(root, f.Pos.Filename), Rule: f.Rule, Msg: f.Msg}
		if budget[e] > 0 {
			budget[e]--
			continue
		}
		kept = append(kept, f)
	}
	for _, left := range budget {
		stale += left
	}
	return kept, stale
}

// relSlash renders path relative to root with forward slashes; paths
// outside root stay absolute so they never collide with in-module ones.
func relSlash(root, path string) string {
	if root == "" {
		return filepath.ToSlash(path)
	}
	rel, err := filepath.Rel(root, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(path)
	}
	return filepath.ToSlash(rel)
}
