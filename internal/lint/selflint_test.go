package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// TestSelfLint runs the full analyzer suite over this repository and
// requires zero findings, so a PR cannot reintroduce a violation of the
// determinism/concurrency invariants without failing `go test`.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("self-lint type-checks the whole module; skipped in -short mode")
	}
	root := moduleRoot(t)
	files, err := Load(Options{Dir: root})
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(files, Analyzers())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Fatalf("satelint found %d violation(s); fix them or add a //lint:ignore <rule> <reason> directive", len(findings))
	}
	// Sanity floor: an empty load would vacuously pass.
	if len(files) < 50 {
		t.Fatalf("self-lint only loaded %d files; loader is broken", len(files))
	}
}

// moduleRoot walks up from the test's working directory to the enclosing
// go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}
