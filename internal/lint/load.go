package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Options configures Load.
type Options struct {
	// Dir is the module directory to lint. Empty means the current
	// directory.
	Dir string
	// Patterns are package patterns in `go list` syntax. Empty means
	// ["./..."].
	Patterns []string
	// SkipTests excludes _test.go files from analysis.
	SkipTests bool
}

// File is one parsed, type-checked source file plus the package context the
// analyzers need.
type File struct {
	Fset *token.FileSet
	Ast  *ast.File
	// Name is the absolute path of the file.
	Name string
	// IsTest reports whether the file name ends in _test.go.
	IsTest bool
	Pkg    *types.Package
	Info   *types.Info
	// ImportPath is the package's import path with any test-variant
	// suffix ("pkg [pkg.test]") stripped.
	ImportPath string
	// RelPath is ImportPath relative to the module root: "" for the root
	// package, "internal/par" for sate/internal/par, and so on. Rules
	// that key on package location use RelPath so they work in any
	// module (including the test fixtures).
	RelPath string
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	ForTest    string
}

// cleanPath strips the test-variant suffix from a `go list -test` import
// path: "sate/internal/gnn [sate/internal/gnn.test]" -> "sate/internal/gnn".
func cleanPath(p string) string {
	if i := strings.Index(p, " ["); i >= 0 {
		return p[:i]
	}
	return p
}

// Load resolves the given package patterns with the go command, type-checks
// every matched package from source (dependencies are loaded from compiler
// export data, so only the matched packages are re-checked), and returns the
// files to analyze.
//
// The heavy lifting is delegated to `go list -deps -export`, which compiles
// dependency export data into the build cache; the linter itself depends
// only on the standard library.
func Load(opts Options) ([]*File, error) {
	patterns := opts.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	modPath, err := goListModule(opts.Dir)
	if err != nil {
		return nil, err
	}

	args := []string{"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,ForTest"}
	if !opts.SkipTests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	out, err := runGo(opts.Dir, args...)
	if err != nil {
		return nil, err
	}

	exports, targets, order, err := parseList(out)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)

	var files []*File
	for _, clean := range order {
		p := targets[clean]
		pkgFiles, err := checkPackage(fset, imp, modPath, clean, p, opts.SkipTests)
		if err != nil {
			return nil, err
		}
		files = append(files, pkgFiles...)
	}
	return files, nil
}

// parseList decodes a `go list -deps -export -json` stream in one pass:
// it collects export data for every package and picks the lint targets.
// When tests are included, `go list -test` emits both "pkg" and the
// superset variant "pkg [pkg.test]"; only the variant is linted so each
// file is analyzed exactly once.
func parseList(out []byte) (exports map[string]string, targets map[string]listPkg, order []string, err error) {
	exports = map[string]string{}
	targets = map[string]listPkg{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		clean := cleanPath(p.ImportPath)
		if p.Export != "" {
			// Prefer the plain archive: that is what other
			// packages compile against.
			if _, ok := exports[clean]; !ok || p.ForTest == "" {
				exports[clean] = p.Export
			}
		}
		if p.DepOnly || strings.HasSuffix(p.ImportPath, ".test") {
			continue // dependency or synthesized test-main package
		}
		if prev, ok := targets[clean]; ok {
			if prev.ForTest == "" && p.ForTest != "" {
				targets[clean] = p
			}
			continue
		}
		targets[clean] = p
		order = append(order, clean)
	}
	return exports, targets, order, nil
}

// exportImporter returns an importer that resolves dependencies from the
// compiler export-data archives indexed by import path.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})
}

// checkPackage parses and type-checks one package and wraps its files.
func checkPackage(fset *token.FileSet, imp types.Importer, modPath, clean string, p listPkg, skipTests bool) ([]*File, error) {
	var asts []*ast.File
	var names []string
	for _, g := range p.GoFiles {
		name := g
		if !filepath.IsAbs(name) {
			name = filepath.Join(p.Dir, g)
		}
		a, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		asts = append(asts, a)
		names = append(names, name)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(clean, fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", clean, err)
	}
	rel := strings.TrimPrefix(clean, modPath)
	rel = strings.TrimPrefix(rel, "/")
	if rel == modPath || clean == modPath {
		rel = ""
	}
	var files []*File
	for i, a := range asts {
		isTest := strings.HasSuffix(names[i], "_test.go")
		if isTest && skipTests {
			continue
		}
		files = append(files, &File{
			Fset: fset, Ast: a, Name: names[i], IsTest: isTest,
			Pkg: pkg, Info: info, ImportPath: clean, RelPath: rel,
		})
	}
	return files, nil
}

// goListModule returns the module path of the module rooted at dir.
func goListModule(dir string) (string, error) {
	out, err := runGo(dir, "list", "-m")
	if err != nil {
		return "", err
	}
	mod := strings.TrimSpace(string(out))
	// Outside a module the go command reports the synthetic
	// "command-line-arguments" package instead of failing.
	if mod == "" || mod == "command-line-arguments" {
		return "", fmt.Errorf("lint: %s is not inside a Go module", filepath.Join(dir, "."))
	}
	return mod, nil
}

// runGo invokes the go command in dir and returns stdout, folding stderr
// into the error on failure.
func runGo(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("lint: go %s: %s", strings.Join(args, " "), msg)
	}
	return out, nil
}
