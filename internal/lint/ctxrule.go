package lint

import (
	"go/ast"
	"go/types"
)

// ctx-propagation: a function that receives a context.Context must thread
// it down, so the controller's timeout/retry layer (PR 5) cannot be
// bypassed by a context-dropping call chain. Three checks:
//
//  1. context.Background()/context.TODO() inside a function that already
//     has a ctx in lexical scope (its own parameter, or — for closures —
//     a parameter of an enclosing function) discards the caller's
//     deadline and cancellation.
//  2. A named ctx parameter that is never used: the signature promises
//     propagation the body does not deliver.
//  3. A chain drop: a ctx-having function calls a ctx-less in-module
//     function that transitively (through ctx-less functions only)
//     constructs a fresh context — the deadline silently evaporates
//     partway down the stack. Reported at the dropping call site.

var ctxPropagation = &Analyzer{
	Name: "ctx-propagation",
	Doc: "a function that receives a context.Context must propagate it: no " +
		"context.Background()/TODO() while a ctx is in scope, no unused ctx " +
		"parameters, and no calls into ctx-less chains that manufacture a " +
		"fresh context further down",
	runProgram: func(p *Program, report func(f *File, n ast.Node, format string, args ...any)) {
		info := map[*FuncNode]*ctxInfo{}
		for _, n := range p.Nodes {
			info[n] = ctxInfoFor(n)
		}
		// Transitive closure: which ctx-less nodes reach a fresh-context
		// construction through ctx-less nodes only.
		reachesFresh := map[*FuncNode]bool{}
		var probe func(n *FuncNode, seen map[*FuncNode]bool) bool
		probe = func(n *FuncNode, seen map[*FuncNode]bool) bool {
			if seen[n] {
				return reachesFresh[n]
			}
			seen[n] = true
			ci := info[n]
			if len(ci.fresh) > 0 {
				reachesFresh[n] = true
				return true
			}
			for _, e := range n.Edges {
				c := e.Callee
				if info[c].ctxParam != nil || c.Lit != nil {
					continue // ctx re-enters, or lexical capture covers it
				}
				if probe(c, seen) {
					reachesFresh[n] = true
					return true
				}
			}
			return false
		}
		seen := map[*FuncNode]bool{}
		for _, n := range p.Nodes {
			if info[n].ctxParam == nil {
				probe(n, seen)
			}
		}

		for _, n := range p.Nodes {
			ci := info[n]
			inScope := ci.ctxParam != nil
			for e := n.Enclosing; !inScope && e != nil; e = e.Enclosing {
				inScope = info[e].ctxParam != nil
			}
			// Check 1: fresh contexts while one is in scope.
			if inScope {
				for _, call := range ci.fresh {
					report(n.File, call, "fresh context constructed while a ctx is in scope; propagate the existing one")
				}
			}
			// Check 2: unused ctx parameter.
			if ci.ctxParam != nil && ci.ctxParam.Name() != "_" && !usesObj(n, ci.ctxParam) {
				report(n.File, n.Body(), "ctx parameter %s is never used; propagate it to callees or drop it", ci.ctxParam.Name())
			}
			// Check 3: chain drops.
			if ci.ctxParam == nil {
				continue
			}
			for _, e := range n.Edges {
				c := e.Callee
				if e.Widened || c.Lit != nil || info[c].ctxParam != nil {
					continue
				}
				if reachesFresh[c] {
					report(n.File, siteNode(n, e), "call into %s drops ctx: the chain below constructs a fresh context; add a ctx parameter through it", c.Name)
				}
			}
		}
	},
}

// ctxInfo is the per-node state the rule needs.
type ctxInfo struct {
	// ctxParam is the first parameter of type context.Context, if any.
	ctxParam *types.Var
	// fresh lists the context.Background()/TODO() call sites in the body
	// (excluding nested literals, which are their own nodes).
	fresh []*ast.CallExpr
}

func ctxInfoFor(n *FuncNode) *ctxInfo {
	ci := &ctxInfo{}
	if sig := n.Sig(); sig != nil {
		for i := 0; i < sig.Params().Len(); i++ {
			if isContextType(sig.Params().At(i).Type()) {
				ci.ctxParam = sig.Params().At(i)
				break
			}
		}
	}
	ast.Inspect(n.Body(), func(c ast.Node) bool {
		if lit, ok := c.(*ast.FuncLit); ok && lit != n.Lit {
			return false
		}
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := importedCall(n.File, call, "context"); ok && (name == "Background" || name == "TODO") {
			ci.fresh = append(ci.fresh, call)
		}
		return true
	})
	return ci
}

// siteNode wraps an edge site back into a reportable node: find the call
// expression starting at the site.
func siteNode(n *FuncNode, e Edge) ast.Node {
	var found ast.Node
	ast.Inspect(n.Body(), func(c ast.Node) bool {
		if found != nil {
			return false
		}
		if c != nil && c.Pos() == e.Site {
			if _, ok := c.(*ast.CallExpr); ok {
				found = c
				return false
			}
		}
		return true
	})
	if found == nil {
		return n.Body()
	}
	return found
}

// usesObj reports whether the node's body references obj (nested literals
// included: they capture the parameter lexically).
func usesObj(n *FuncNode, obj types.Object) bool {
	found := false
	ast.Inspect(n.Body(), func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok && n.File.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
