package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the whole-program view the call-graph rules run on: a
// type-informed call graph over every non-test file Load returned. The
// graph is deliberately module-local — edges point only at functions whose
// bodies we loaded — and conservatively widened at the three places Go
// hides the callee:
//
//   - function literals: every literal gets an edge from its lexically
//     enclosing function, since a closure built in f runs (if it runs at
//     all) in f's dynamic extent or escapes through f;
//   - named functions used as values (passed as arguments, stored in
//     struct fields or package variables): a call through a func-typed
//     field or package variable is widened to every address-taken named
//     function with a loosely matching signature (type parameters act as
//     wildcards, so a generic op table instantiated at float32/float64
//     matches its generic implementations);
//   - interface method calls: widened to the same-named method on every
//     in-module named type that implements the interface.
//
// Calls through func-typed parameters and local variables are NOT widened:
// the callback that reaches such a call site got its caller→literal or
// caller→named-function edge where it was passed in, which is the extent
// that matters for the hot-path rule.

// Edge is one resolved call from a function body to an in-module function.
type Edge struct {
	// Site is the position of the call (or literal definition) that
	// produced the edge, inside the caller's body.
	Site token.Pos
	// Callee is the target node.
	Callee *FuncNode
	// Widened marks edges produced by indirect-call or interface
	// widening rather than a direct static call.
	Widened bool
}

// FuncNode is one function in the program: a declared function or method
// (Decl != nil) or a function literal (Lit != nil).
type FuncNode struct {
	File *File
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declarations
	// Obj is the declared function's type object (its Origin for
	// generics); nil for literals.
	Obj *types.Func
	// Name is a stable human-readable name: "pkg.Func", "pkg.(T).Method",
	// or "pkg.Outer.func@line" for literals.
	Name string
	// Enclosing is the function node a literal is defined inside; nil
	// for declarations.
	Enclosing *FuncNode
	// Edges are the resolved outgoing calls, ordered by call site.
	Edges []Edge
	// HotRoot reports a //sate:hotpath annotation on the declaration's
	// doc comment; HotNote carries the annotation's trailing text.
	HotRoot bool
	HotNote string
}

// Body returns the function's body block (never nil for nodes in a Program).
func (n *FuncNode) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Pos returns the position of the func keyword.
func (n *FuncNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// Sig returns the node's signature.
func (n *FuncNode) Sig() *types.Signature {
	if n.Obj != nil {
		return n.Obj.Type().(*types.Signature)
	}
	if tv, ok := n.File.Info.Types[n.Lit]; ok {
		if sig, ok := tv.Type.(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

// Program is the whole-module view shared by the call-graph analyzers.
type Program struct {
	// Files holds the non-test files the call graph is built over.
	Files []*File
	// All additionally includes test files, for program rules that scan
	// every use site (no-deprecated-call) without widening the call graph.
	All []*File
	// Nodes lists every function in deterministic order (file, then
	// position).
	Nodes []*FuncNode
	// ByKey maps a declared function's stable identity to its node.
	// Object identity cannot be used: each package is type-checked
	// independently, so the same function is a different *types.Func
	// when seen through export data than from its own source.
	ByKey map[string]*FuncNode
	// ByLit maps a function literal to its node.
	ByLit map[*ast.FuncLit]*FuncNode

	// supp gives program-level analyzers access to the per-file
	// suppression tables so a directive can opt out a whole extent.
	supp map[*File]*suppTable
}

// Suppressed reports (and records) whether a directive suppresses rule at
// the given line of f, using the same two-line window as line findings.
func (p *Program) Suppressed(f *File, rule string, line int) bool {
	t := p.supp[f]
	if t == nil {
		return false
	}
	return t.suppressed(rule, line)
}

// hotpathDirective is the annotation that marks a function as a hot-path
// root for the hotpath-no-alloc rule.
const hotpathDirective = "//sate:hotpath"

// origin returns fn's generic origin, so instantiations share one node.
func origin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// funcKey renders a declared function's stable cross-package identity:
// "pkgpath.Recv.Name" for methods, "pkgpath.Name" for functions.
func funcKey(fn *types.Func) string {
	fn = origin(fn)
	key := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named, ok := derefNamed(sig.Recv().Type()); ok {
			key = named.Origin().Obj().Name() + "." + key
		}
	}
	if fn.Pkg() != nil {
		key = fn.Pkg().Path() + "." + key
	}
	return key
}

// namedKey renders a named type's stable cross-package identity.
func namedKey(n *types.Named) string {
	obj := n.Origin().Obj()
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return obj.Name()
}

// BuildProgram constructs the call graph over the non-test files.
func BuildProgram(files []*File) *Program {
	p := &Program{
		ByKey: map[string]*FuncNode{},
		ByLit: map[*ast.FuncLit]*FuncNode{},
	}
	p.All = files
	for _, f := range files {
		if !f.IsTest {
			p.Files = append(p.Files, f)
		}
	}

	// Pass 1: create a node per function declaration and per literal.
	for _, f := range p.Files {
		for _, d := range f.Ast.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := f.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			n := &FuncNode{File: f, Decl: fd, Obj: origin(obj), Name: declName(f, fd)}
			n.HotRoot, n.HotNote = hotAnnotation(fd)
			p.ByKey[funcKey(n.Obj)] = n
			p.Nodes = append(p.Nodes, n)
		}
	}
	// Literals, attributed to their lexically enclosing node.
	for _, f := range p.Files {
		for _, d := range f.Ast.Decls {
			encl := (*FuncNode)(nil)
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj, _ := f.Info.Defs[fd.Name].(*types.Func); obj != nil {
					encl = p.ByKey[funcKey(obj)]
				}
			}
			p.collectLits(f, d, encl)
		}
	}

	// Pass 2: the widening sets — address-taken named functions, and
	// in-module concrete method implementations per method name.
	taken := p.addressTaken()
	methods := p.methodImpls()

	// Pass 3: resolve the edges of every node.
	for _, n := range p.Nodes {
		p.resolveEdges(n, taken, methods)
	}
	return p
}

// collectLits walks root creating nodes for function literals. Literals
// nest, so the enclosing node is tracked through the descent.
func (p *Program) collectLits(f *File, root ast.Node, encl *FuncNode) {
	var walk func(n ast.Node, encl *FuncNode)
	walk = func(n ast.Node, encl *FuncNode) {
		ast.Inspect(n, func(c ast.Node) bool {
			lit, ok := c.(*ast.FuncLit)
			if !ok {
				return true
			}
			pos := f.Fset.Position(lit.Pos())
			name := "func@" + itoa(pos.Line)
			if encl != nil {
				name = encl.Name + "." + name
			} else {
				name = f.Pkg.Name() + "." + name
			}
			ln := &FuncNode{File: f, Lit: lit, Name: name, Enclosing: encl}
			p.ByLit[lit] = ln
			p.Nodes = append(p.Nodes, ln)
			walk(lit.Body, ln)
			return false // children handled by the recursive walk
		})
	}
	walk(root, encl)
}

// itoa is a tiny strconv.Itoa stand-in to keep the import list short.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// declName renders a declared function's display name.
func declName(f *File, fd *ast.FuncDecl) string {
	pkg := f.Pkg.Name()
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return pkg + "." + fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	for {
		switch t := recv.(type) {
		case *ast.StarExpr:
			recv = t.X
			continue
		case *ast.IndexExpr:
			recv = t.X
			continue
		case *ast.IndexListExpr:
			recv = t.X
			continue
		}
		break
	}
	if id, ok := recv.(*ast.Ident); ok {
		return pkg + ".(" + id.Name + ")." + fd.Name.Name
	}
	return pkg + "." + fd.Name.Name
}

// hotAnnotation scans a declaration's doc comment for //sate:hotpath.
func hotAnnotation(fd *ast.FuncDecl) (bool, string) {
	if fd.Doc == nil {
		return false, ""
	}
	for _, c := range fd.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, hotpathDirective)
		if !ok {
			continue
		}
		if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
			return true, strings.TrimSpace(rest)
		}
	}
	return false, ""
}

// addressTaken returns the declared in-module functions whose value is used
// outside a call position: stored, passed, or compared. These are the
// candidates a widened indirect call can reach.
func (p *Program) addressTaken() []*FuncNode {
	set := map[*FuncNode]bool{}
	for _, f := range p.Files {
		// Call positions to exclude: the Fun of each CallExpr.
		funPos := map[ast.Expr]bool{}
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				funPos[call.Fun] = true
				// A selector's inner parts are part of the callee
				// expression, not a value use.
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					funPos[sel.Sel] = true
				}
			}
			return true
		})
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || funPos[id] {
				return true
			}
			fn, ok := f.Info.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			if node := p.ByKey[funcKey(fn)]; node != nil {
				set[node] = true
			}
			return true
		})
	}
	var out []*FuncNode
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// methodImpls indexes every in-module method node by method name, for
// interface-call widening.
func (p *Program) methodImpls() map[string][]*FuncNode {
	out := map[string][]*FuncNode{}
	for _, n := range p.Nodes {
		if n.Decl == nil || n.Decl.Recv == nil {
			continue
		}
		out[n.Decl.Name.Name] = append(out[n.Decl.Name.Name], n)
	}
	return out
}

// resolveEdges fills n.Edges: static calls, literal containment, named
// functions passed as values at call sites, widened field/package-variable
// indirect calls, and widened interface calls.
func (p *Program) resolveEdges(n *FuncNode, taken []*FuncNode, methods map[string][]*FuncNode) {
	f := n.File
	add := func(site token.Pos, callee *FuncNode, widened bool) {
		if callee == nil || callee == n {
			return
		}
		n.Edges = append(n.Edges, Edge{Site: site, Callee: callee, Widened: widened})
	}
	// Walk the node's own body, stopping at nested literals (they are
	// their own nodes) but adding a containment edge to each.
	inExtent := func(visit func(ast.Node) bool) {
		ast.Inspect(n.Body(), func(c ast.Node) bool {
			if lit, ok := c.(*ast.FuncLit); ok && c != ast.Node(n.Lit) {
				add(lit.Pos(), p.ByLit[lit], false)
				return false
			}
			return visit(c)
		})
	}
	inExtent(func(c ast.Node) bool {
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Named functions passed as argument values: the callee (in
		// or out of module) may invoke them in our dynamic extent.
		for _, arg := range call.Args {
			if fn := usedFunc(f, arg); fn != nil {
				add(arg.Pos(), p.ByKey[funcKey(fn)], false)
			}
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			switch obj := f.Info.Uses[fun].(type) {
			case *types.Func:
				add(call.Pos(), p.ByKey[funcKey(obj)], false)
			case *types.Var:
				// Indirect call through a variable. Parameters and
				// locals were covered where the value was passed in;
				// package variables are widened.
				if obj.Parent() == f.Pkg.Scope() {
					p.widen(n, call, obj.Type(), taken)
				}
			}
		case *ast.SelectorExpr:
			switch obj := f.Info.Uses[fun.Sel].(type) {
			case *types.Func:
				sig, _ := obj.Type().(*types.Signature)
				if sig != nil && sig.Recv() != nil && isInterfaceRecv(sig) {
					// Interface method call: widen to in-module
					// implementations.
					p.widenInterface(n, call, fun.Sel.Name, obj, methods)
				} else {
					add(call.Pos(), p.ByKey[funcKey(obj)], false)
				}
			case *types.Var:
				// Call through a func-typed struct field or
				// package-level variable.
				if obj.IsField() || obj.Parent() == f.Pkg.Scope() ||
					(obj.Pkg() != nil && obj.Pkg() != f.Pkg) {
					p.widen(n, call, obj.Type(), taken)
				}
			}
		}
		return true
	})
	sort.Slice(n.Edges, func(i, j int) bool { return n.Edges[i].Site < n.Edges[j].Site })
}

// usedFunc returns the declared function named directly by expr (an ident
// or selector used as a value), or nil.
func usedFunc(f *File, expr ast.Expr) *types.Func {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		fn, _ := f.Info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := f.Info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isInterfaceRecv reports whether a method signature's receiver is an
// interface (i.e. the call site dispatches dynamically).
func isInterfaceRecv(sig *types.Signature) bool {
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// widen adds edges for an indirect call through a func-typed field or
// package variable: every address-taken named function whose signature
// loosely matches the callee type is a candidate target.
func (p *Program) widen(n *FuncNode, call *ast.CallExpr, t types.Type, taken []*FuncNode) {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for _, cand := range taken {
		cs := cand.Sig()
		if cs == nil || !looseSigEq(sig, cs) {
			continue
		}
		n.Edges = append(n.Edges, Edge{Site: call.Pos(), Callee: cand, Widened: true})
	}
}

// widenInterface adds edges for an interface method call: every in-module
// named type implementing the interface contributes its same-named method.
func (p *Program) widenInterface(n *FuncNode, call *ast.CallExpr, name string, decl *types.Func, methods map[string][]*FuncNode) {
	iface, ok := decl.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return
	}
	for _, cand := range methods[name] {
		if cand.Obj == nil {
			continue
		}
		recv := cand.Obj.Type().(*types.Signature).Recv()
		if recv == nil {
			continue
		}
		if looseImplements(recv.Type(), iface) {
			n.Edges = append(n.Edges, Edge{Site: call.Pos(), Callee: cand, Widened: true})
		}
	}
}

// looseImplements is a cross-package-safe types.Implements: each interface
// method must exist on t with a loosely matching signature. Structural
// comparison with namedKey identity sidesteps the fact that independently
// type-checked packages never share type objects.
func looseImplements(t types.Type, iface *types.Interface) bool {
	if iface.NumMethods() == 0 {
		return false // any: widening to every type would drown the graph
	}
	for i := 0; i < iface.NumMethods(); i++ {
		m := iface.Method(i)
		obj, _, _ := types.LookupFieldOrMethod(t, true, m.Pkg(), m.Name())
		fn, ok := obj.(*types.Func)
		if !ok {
			return false
		}
		ms, ok := fn.Type().(*types.Signature)
		if !ok || !looseSigEq(ms, m.Type().(*types.Signature)) {
			return false
		}
	}
	return true
}

// derefNamed unwraps a pointer and reports the named type underneath.
func derefNamed(t types.Type) (*types.Named, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}

// looseSigEq compares two signatures structurally, treating any type
// parameter as a wildcard, so a generic implementation matches the
// instantiated func type a dispatch table stores it under.
func looseSigEq(a, b *types.Signature) bool {
	return looseTupleEq(a.Params(), b.Params()) &&
		looseTupleEq(a.Results(), b.Results()) &&
		a.Variadic() == b.Variadic()
}

func looseTupleEq(a, b *types.Tuple) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if !looseTypeEq(a.At(i).Type(), b.At(i).Type()) {
			return false
		}
	}
	return true
}

// looseTypeEq is structural type equality with type-parameter wildcards.
// Named types match by origin object identity, so Tensor[float32] matches
// Tensor[T] but never an unrelated named type.
func looseTypeEq(a, b types.Type) bool {
	if _, ok := a.(*types.TypeParam); ok {
		return true
	}
	if _, ok := b.(*types.TypeParam); ok {
		return true
	}
	switch at := a.(type) {
	case *types.Named:
		bt, ok := b.(*types.Named)
		return ok && namedKey(at) == namedKey(bt)
	case *types.Pointer:
		bt, ok := b.(*types.Pointer)
		return ok && looseTypeEq(at.Elem(), bt.Elem())
	case *types.Slice:
		bt, ok := b.(*types.Slice)
		return ok && looseTypeEq(at.Elem(), bt.Elem())
	case *types.Array:
		bt, ok := b.(*types.Array)
		return ok && at.Len() == bt.Len() && looseTypeEq(at.Elem(), bt.Elem())
	case *types.Map:
		bt, ok := b.(*types.Map)
		return ok && looseTypeEq(at.Key(), bt.Key()) && looseTypeEq(at.Elem(), bt.Elem())
	case *types.Chan:
		bt, ok := b.(*types.Chan)
		return ok && at.Dir() == bt.Dir() && looseTypeEq(at.Elem(), bt.Elem())
	case *types.Signature:
		bt, ok := b.(*types.Signature)
		return ok && looseSigEq(at, bt)
	case *types.Basic:
		bt, ok := b.(*types.Basic)
		return ok && at.Kind() == bt.Kind()
	case *types.Interface, *types.Struct:
		return types.Identical(a, b)
	}
	return types.Identical(a, b)
}
