package te

import (
	"math"

	"sate/internal/paths"
	"sate/internal/topology"
	"sate/internal/traffic"
)

// BuildConfig controls problem assembly from a scenario.
type BuildConfig struct {
	// LinkCapMbps is the capacity of every ISL and relay link (paper: 200).
	LinkCapMbps float64
	// AccessMbps is the per-connection uplink/downlink capacity (paper: 50).
	// Per-satellite access capacity is AccessMbps times the number of
	// underlying flows attached at that satellite; zero disables access
	// constraints.
	AccessMbps float64
	// K is the number of candidate paths per flow (paper: 10).
	K int
}

// DefaultBuildConfig returns the paper's evaluation parameters.
func DefaultBuildConfig() BuildConfig {
	return BuildConfig{LinkCapMbps: 200, AccessMbps: 50, K: 10}
}

// Build assembles a TE problem from a topology snapshot, a sparse traffic
// matrix and a path database. Demands whose pair has no valid path in the
// snapshot are kept (they count toward total demand — they simply cannot be
// satisfied, as in the paper's online metric); their path list is empty.
func Build(s *topology.Snapshot, m *traffic.Matrix, db *paths.DB, cfg BuildConfig) (*Problem, error) {
	p := &Problem{
		NumNodes: s.NumNodes,
		Links:    append([]topology.Link(nil), s.Links...),
	}
	p.LinkCap = make([]float64, len(p.Links))
	for i := range p.LinkCap {
		p.LinkCap[i] = cfg.LinkCapMbps
	}

	var upConn, downConn []int
	if cfg.AccessMbps > 0 {
		upConn = make([]int, s.NumNodes)
		downConn = make([]int, s.NumNodes)
	}
	// Bulk-warm the path database so the per-pair k-shortest searches fan
	// out across the worker pool; the loop below then hits the cache.
	warm := make([]paths.Pair, len(m.Entries))
	for i, e := range m.Entries {
		warm[i] = paths.Pair{Src: e.Src, Dst: e.Dst}
	}
	db.Precompute(warm)
	for _, e := range m.Entries {
		ps := db.Paths(e.Src, e.Dst)
		p.Flows = append(p.Flows, FlowDemand{
			Src:        topology.NodeID(e.Src),
			Dst:        topology.NodeID(e.Dst),
			DemandMbps: e.DemandMbps,
			Paths:      append([]paths.Path(nil), ps...),
		})
		if cfg.AccessMbps > 0 {
			n := len(e.Flows)
			if n == 0 {
				n = 1
			}
			upConn[e.Src] += n
			downConn[e.Dst] += n
		}
	}
	if cfg.AccessMbps > 0 {
		p.UpCap = make([]float64, s.NumNodes)
		p.DownCap = make([]float64, s.NumNodes)
		for n := 0; n < s.NumNodes; n++ {
			p.UpCap[n] = math.Inf(1)
			p.DownCap[n] = math.Inf(1)
			if upConn[n] > 0 {
				p.UpCap[n] = cfg.AccessMbps * float64(upConn[n])
			}
			if downConn[n] > 0 {
				p.DownCap[n] = cfg.AccessMbps * float64(downConn[n])
			}
		}
	}
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}
