package te

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"sate/internal/constellation"
	"sate/internal/groundnet"
	"sate/internal/orbit"
	"sate/internal/paths"
	"sate/internal/topology"
	"sate/internal/traffic"
)

// diamond builds a tiny 4-node problem:
//
//	0 --(a)-- 1 --(b)-- 3
//	0 --(c)-- 2 --(d)-- 3
//
// with one flow 0->3 over both 2-hop paths.
func diamond(capA, capB, capC, capD, demand float64) *Problem {
	links := []topology.Link{
		topology.MakeLink(0, 1, topology.IntraOrbit),
		topology.MakeLink(1, 3, topology.IntraOrbit),
		topology.MakeLink(0, 2, topology.IntraOrbit),
		topology.MakeLink(2, 3, topology.IntraOrbit),
	}
	p := &Problem{
		NumNodes: 4,
		Links:    links,
		LinkCap:  []float64{capA, capB, capC, capD},
		Flows: []FlowDemand{{
			Src: 0, Dst: 3, DemandMbps: demand,
			Paths: []paths.Path{paths.NewPath(0, 1, 3), paths.NewPath(0, 2, 3)},
		}},
	}
	if err := p.Finalize(); err != nil {
		panic(err)
	}
	return p
}

func TestFinalizeDropsObsoletePaths(t *testing.T) {
	p := diamond(10, 10, 10, 10, 5)
	// Add a path over a non-existent link.
	p.Flows[0].Paths = append(p.Flows[0].Paths, paths.NewPath(0, 3))
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	if len(p.Flows[0].Paths) != 2 {
		t.Errorf("paths after finalize = %d, want 2", len(p.Flows[0].Paths))
	}
}

func TestFinalizeCapMismatch(t *testing.T) {
	p := &Problem{Links: []topology.Link{topology.MakeLink(0, 1, topology.IntraOrbit)}}
	if err := p.Finalize(); err == nil {
		t.Error("expected error on cap/link mismatch")
	}
}

func TestMetrics(t *testing.T) {
	p := diamond(10, 10, 10, 10, 30)
	a := NewAllocation(p)
	a.X[0][0] = 10
	a.X[0][1] = 5
	if got := a.Throughput(); got != 15 {
		t.Errorf("throughput = %v", got)
	}
	if got := p.SatisfiedDemand(a); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("satisfied = %v", got)
	}
	loads := p.LinkLoads(a)
	want := []float64{10, 10, 5, 5}
	for i := range want {
		//lint:ignore no-float-equality small-integer link loads are exact in float64
		if loads[i] != want[i] {
			t.Errorf("load[%d] = %v want %v", i, loads[i], want[i])
		}
	}
	if got := p.MLU(a); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("MLU = %v", got)
	}
	up, down := p.NodeLoads(a)
	if up[0] != 15 || down[3] != 15 {
		t.Errorf("node loads up=%v down=%v", up, down)
	}
}

func TestCheckViolations(t *testing.T) {
	p := diamond(10, 10, 10, 10, 12)
	a := NewAllocation(p)
	a.X[0][0] = 11 // link over by 1 on links a,b; flow total 11 < 12 OK
	a.X[0][1] = -2 // negative
	v := p.Check(a)
	if v.LinkOver != 2 {
		t.Errorf("linkOver = %v want 2", v.LinkOver)
	}
	if v.Negative != 2 {
		t.Errorf("negative = %v", v.Negative)
	}
	if !v.Any(1e-9) {
		t.Error("violations not detected")
	}
	a2 := NewAllocation(p)
	a2.X[0][0] = 5
	if p.Check(a2).Any(1e-9) {
		t.Error("feasible allocation flagged")
	}
}

func TestDemandOverViolation(t *testing.T) {
	p := diamond(100, 100, 100, 100, 8)
	a := NewAllocation(p)
	a.X[0][0] = 6
	a.X[0][1] = 6
	v := p.Check(a)
	if math.Abs(v.DemandOver-4) > 1e-12 {
		t.Errorf("demandOver = %v want 4", v.DemandOver)
	}
}

func TestTrimRestoresFeasibility(t *testing.T) {
	p := diamond(10, 10, 10, 10, 12)
	a := NewAllocation(p)
	a.X[0][0] = 25
	a.X[0][1] = math.NaN()
	p.Trim(a)
	if v := p.Check(a); v.Any(1e-9) {
		t.Errorf("trim left violations: %+v", v)
	}
	if a.Throughput() <= 0 {
		t.Error("trim zeroed everything")
	}
}

func TestTrimPreservesFeasible(t *testing.T) {
	p := diamond(10, 10, 10, 10, 12)
	a := NewAllocation(p)
	a.X[0][0] = 6
	a.X[0][1] = 6
	p.Trim(a)
	if math.Abs(a.X[0][0]-6) > 1e-12 || math.Abs(a.X[0][1]-6) > 1e-12 {
		t.Errorf("feasible allocation modified: %v", a.X[0])
	}
}

func TestTrimProperty(t *testing.T) {
	p := diamond(10, 7, 4, 9, 15)
	f := func(x0, x1 float64) bool {
		a := NewAllocation(p)
		a.X[0][0] = math.Mod(x0, 100)
		a.X[0][1] = math.Mod(x1, 100)
		p.Trim(a)
		return !p.Check(a).Any(1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrimWithAccessCaps(t *testing.T) {
	p := diamond(100, 100, 100, 100, 80)
	p.UpCap = []float64{20, math.Inf(1), math.Inf(1), math.Inf(1)}
	p.DownCap = []float64{math.Inf(1), math.Inf(1), math.Inf(1), 15}
	a := NewAllocation(p)
	a.X[0][0] = 40
	a.X[0][1] = 40
	p.Trim(a)
	if v := p.Check(a); v.Any(1e-9) {
		t.Errorf("violations after trim: %+v", v)
	}
	// Downlink at node 3 (15) is the binding constraint.
	if got := a.Throughput(); got > 15+1e-9 {
		t.Errorf("throughput %v exceeds downlink cap 15", got)
	}
}

func TestFlowStats(t *testing.T) {
	p := diamond(10, 10, 10, 10, 20)
	a := NewAllocation(p)
	a.X[0][0] = 5
	st := p.FlowStats(a)
	if len(st) != 1 || math.Abs(st[0]-0.25) > 1e-12 {
		t.Errorf("stats = %v", st)
	}
}

func TestAllocationClone(t *testing.T) {
	p := diamond(10, 10, 10, 10, 20)
	a := NewAllocation(p)
	a.X[0][0] = 5
	b := a.Clone()
	b.X[0][0] = 9
	if a.X[0][0] != 5 {
		t.Error("clone aliases original")
	}
}

func TestBuildFromScenario(t *testing.T) {
	cons := constellation.Toy(6, 8)
	gen := topology.NewGenerator(cons, topology.DefaultConfig(topology.CrossShellLasers))
	snap := gen.Snapshot(0)

	grid := groundnet.SyntheticPopulation(1)
	seg := groundnet.Build(grid, groundnet.Config{
		Users: 3000, UserClusters: 80, Gateways: 10, Relays: 5, Gamma: 0.1, Seed: 2,
	})
	loc := groundnet.NewSatLocator(cons)
	loc.Update(snap.Pos[:snap.NumSats])
	tg := traffic.NewGenerator(seg, traffic.DefaultConfig(40, 11))
	tg.AdvanceTo(20)
	m := traffic.BuildMatrix(tg.ActiveFlows(), loc, orbit.Deg(5), cons.Size())
	if len(m.Entries) == 0 {
		t.Fatal("no demand")
	}

	db := paths.NewDB(cons, snap, 4)
	p, err := Build(snap, m, db, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Flows) != len(m.Entries) {
		t.Errorf("flows = %d, entries = %d", len(p.Flows), len(m.Entries))
	}
	if math.Abs(p.TotalDemand()-m.Total()) > 1e-9 {
		t.Errorf("demand mismatch: %v vs %v", p.TotalDemand(), m.Total())
	}
	withPaths := 0
	for _, f := range p.Flows {
		if len(f.Paths) > 0 {
			withPaths++
		}
	}
	if withPaths == 0 {
		t.Fatal("no flow has candidate paths")
	}
	// Access caps: finite for nodes with demand.
	someFinite := false
	for _, c := range p.UpCap {
		if !math.IsInf(c, 1) {
			someFinite = true
		}
	}
	if !someFinite {
		t.Error("no finite uplink capacity")
	}
	if p.NumPaths() == 0 {
		t.Error("no path variables")
	}
}

func TestBuildRandomizedTrimAlwaysFeasible(t *testing.T) {
	cons := constellation.Toy(4, 6)
	gen := topology.NewGenerator(cons, topology.DefaultConfig(topology.CrossShellLasers))
	snap := gen.Snapshot(0)
	grid := groundnet.SyntheticPopulation(1)
	seg := groundnet.Build(grid, groundnet.Config{
		Users: 1000, UserClusters: 40, Gateways: 5, Relays: 3, Gamma: 0.2, Seed: 4,
	})
	loc := groundnet.NewSatLocator(cons)
	loc.Update(snap.Pos[:snap.NumSats])
	tg := traffic.NewGenerator(seg, traffic.DefaultConfig(30, 13))
	tg.AdvanceTo(15)
	m := traffic.BuildMatrix(tg.ActiveFlows(), loc, orbit.Deg(5), cons.Size())
	db := paths.NewDB(cons, snap, 3)
	p, err := Build(snap, m, db, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		a := NewAllocation(p)
		for fi := range a.X {
			for pi := range a.X[fi] {
				a.X[fi][pi] = (rng.Float64() - 0.1) * 500
			}
		}
		p.Trim(a)
		if v := p.Check(a); v.Any(1e-6) {
			t.Fatalf("trial %d: violations %+v", trial, v)
		}
	}
}

func TestWriteLPFormat(t *testing.T) {
	p := diamond(10, 10, 10, 10, 12)
	p.UpCap = []float64{30, math.Inf(1), math.Inf(1), math.Inf(1)}
	p.DownCap = []float64{math.Inf(1), math.Inf(1), math.Inf(1), 25}
	var buf strings.Builder
	if err := p.WriteLP(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Maximize", "Subject To", "Bounds", "End",
		"x_f0_p0", "x_f0_p1",
		"demand_0: x_f0_p0 + x_f0_p1 <= 12",
		"up_0:", "dn_3:",
		"<= 10",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("LP output missing %q:\n%s", want, out)
		}
	}
	// Every link used by a path gets a capacity row.
	if n := strings.Count(out, "link_"); n != 4 {
		t.Errorf("link constraints = %d, want 4", n)
	}
}

func TestWriteLPEmptyProblem(t *testing.T) {
	p := &Problem{NumNodes: 2}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := p.WriteLP(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "End") {
		t.Error("malformed empty LP")
	}
}
