// Package te defines the satellite traffic-engineering problem of Appendix A:
// flows with candidate paths, link capacity constraints, per-satellite
// uplink/downlink capacities and per-flow demand caps, plus allocations,
// feasibility checking/trimming, and the evaluation metrics (satisfied
// demand, maximum link utilisation, flow-level statistics).
package te

import (
	"fmt"
	"math"

	"sate/internal/paths"
	"sate/internal/topology"
)

// FlowDemand is one TE commodity: the aggregated demand between a satellite
// pair and its candidate paths (traffic-matrix entry + preconfigured paths).
type FlowDemand struct {
	Src, Dst   topology.NodeID
	DemandMbps float64
	Paths      []paths.Path
}

// Problem is a complete TE instance.
type Problem struct {
	NumNodes int
	Links    []topology.Link
	LinkCap  []float64 // Mbps per link, parallel to Links
	Flows    []FlowDemand

	// UpCap and DownCap are per-node access-capacity limits (constraints 2.c
	// and 2.d). A zero-length slice disables the constraint family;
	// math.Inf(1) entries disable individual nodes.
	UpCap, DownCap []float64

	linkIndex map[uint64]int
	// pathLinks[f][p] lists link indices traversed by path p of flow f.
	pathLinks [][][]int
}

func linkKey(l topology.Link) uint64 { return uint64(l.A)<<32 | uint64(uint32(l.B)) }

// Finalize builds the link index and path-link incidence (the Phi matrix of
// Appendix A, stored sparsely). It must be called after the fields are set
// and before solving. Paths that traverse unknown links are dropped from
// their flow (they are obsolete w.r.t. the link set).
func (p *Problem) Finalize() error {
	if len(p.Links) != len(p.LinkCap) {
		return fmt.Errorf("te: %d links but %d capacities", len(p.Links), len(p.LinkCap))
	}
	p.linkIndex = make(map[uint64]int, len(p.Links))
	for i, l := range p.Links {
		p.linkIndex[linkKey(l)] = i
	}
	p.bindFlows()
	return nil
}

// RebindFlows rebuilds only the flow-side derived state — path filtering and
// the path-link incidence — against the problem's existing link index. It is
// the incremental half of Finalize for replay loops that swap Flows every
// cycle while Links and LinkCap hold still (e.g. a clean shard of the sharded
// solver): the caller asserts the link set is unchanged since the last
// Finalize, and the O(links) index rebuild is skipped. A problem that was
// never finalized falls back to the full Finalize.
//
//sate:hotpath clean-shard per-cycle refresh in the sharded solver
func (p *Problem) RebindFlows() error {
	if p.linkIndex == nil {
		//lint:ignore hotpath-no-alloc first-bind fallback: a never-finalized problem pays the full Finalize once
		return p.Finalize()
	}
	if len(p.Links) != len(p.LinkCap) {
		//lint:ignore hotpath-no-alloc error path: a malformed problem aborts the cycle
		return fmt.Errorf("te: %d links but %d capacities", len(p.Links), len(p.LinkCap))
	}
	p.bindFlows()
	return nil
}

// bindFlows filters each flow's paths against the link index and records the
// per-path link incidence. The outer pathLinks slice is reused at high-water
// capacity across rebinds.
//
//lint:ignore hotpath-no-alloc per-path incidence slices are rebuilt per cycle by contract (proportional to live flows); the outer slice reuses retained capacity
func (p *Problem) bindFlows() {
	if cap(p.pathLinks) >= len(p.Flows) {
		p.pathLinks = p.pathLinks[:len(p.Flows)]
	} else {
		p.pathLinks = make([][][]int, len(p.Flows))
	}
	for fi := range p.Flows {
		f := &p.Flows[fi]
		kept := f.Paths[:0]
		var pls [][]int
		for _, path := range f.Paths {
			links := path.Links()
			idx := make([]int, 0, len(links))
			ok := true
			for _, l := range links {
				li, found := p.linkIndex[linkKey(l)]
				if !found {
					ok = false
					break
				}
				idx = append(idx, li)
			}
			if ok {
				kept = append(kept, path)
				pls = append(pls, idx)
			}
		}
		f.Paths = kept
		p.pathLinks[fi] = pls
	}
}

// LinkSet returns the problem's links as a kind-agnostic membership set —
// for a problem built from a failure-injected snapshot this IS the degraded
// link set, which is what the controller's fallback policy scores stale
// allocations against.
func (p *Problem) LinkSet() topology.LinkSet {
	s := make(topology.LinkSet, len(p.Links))
	for _, l := range p.Links {
		s.Add(l)
	}
	return s
}

// LinkIndexOf returns the index of a link, or -1.
func (p *Problem) LinkIndexOf(l topology.Link) int {
	if i, ok := p.linkIndex[linkKey(l)]; ok {
		return i
	}
	return -1
}

// PathLinks returns the link indices of path pi of flow fi.
func (p *Problem) PathLinks(fi, pi int) []int { return p.pathLinks[fi][pi] }

// TotalDemand returns the sum of all flow demands.
func (p *Problem) TotalDemand() float64 {
	var s float64
	for _, f := range p.Flows {
		s += f.DemandMbps
	}
	return s
}

// NumPaths returns the total number of (flow, path) variables.
func (p *Problem) NumPaths() int {
	n := 0
	for _, f := range p.Flows {
		n += len(f.Paths)
	}
	return n
}

// Allocation is a TE solution: x[f][p] is the Mbps assigned to path p of
// flow f (the x_fp of Appendix A).
type Allocation struct {
	X [][]float64
}

// NewAllocation creates a zero allocation shaped for the problem.
//
//sate:hotpath decoder output buffer, one per solve
func NewAllocation(p *Problem) *Allocation {
	// Single backing slab: one allocation instead of one per flow (Solve
	// creates an Allocation per call, so this is steady-state garbage).
	total := 0
	for i := range p.Flows {
		total += len(p.Flows[i].Paths)
	}
	//lint:ignore hotpath-no-alloc the returned allocation is the product; two slabs total instead of one slice per flow
	x := make([][]float64, len(p.Flows))
	//lint:ignore hotpath-no-alloc the returned allocation is the product; two slabs total instead of one slice per flow
	data := make([]float64, total)
	off := 0
	for i, f := range p.Flows {
		n := len(f.Paths)
		x[i] = data[off : off+n : off+n]
		off += n
	}
	//lint:ignore hotpath-no-alloc the returned allocation is the product; two slabs total instead of one slice per flow
	return &Allocation{X: x}
}

// Clone deep-copies the allocation.
func (a *Allocation) Clone() *Allocation {
	total := 0
	for i := range a.X {
		total += len(a.X[i])
	}
	x := make([][]float64, len(a.X))
	data := make([]float64, 0, total)
	for i := range a.X {
		off := len(data)
		data = append(data, a.X[i]...)
		x[i] = data[off:len(data):len(data)]
	}
	return &Allocation{X: x}
}

// Throughput returns the total allocated traffic (objective 2.a).
func (a *Allocation) Throughput() float64 {
	var s float64
	for _, row := range a.X {
		for _, v := range row {
			s += v
		}
	}
	return s
}

// FlowThroughput returns the total allocation of flow f.
func (a *Allocation) FlowThroughput(f int) float64 {
	var s float64
	for _, v := range a.X[f] {
		s += v
	}
	return s
}

// LinkLoads returns per-link traffic under the allocation.
//
//lint:ignore hotpath-no-alloc returns freshly allocated per-solve loads by API contract (one slice per call, proportional to links)
func (p *Problem) LinkLoads(a *Allocation) []float64 {
	load := make([]float64, len(p.Links))
	for fi := range p.Flows {
		for pi := range p.Flows[fi].Paths {
			v := a.X[fi][pi]
			if v == 0 {
				continue
			}
			for _, li := range p.pathLinks[fi][pi] {
				load[li] += v
			}
		}
	}
	return load
}

// NodeLoads returns per-node uplink (sourced) and downlink (terminated)
// traffic under the allocation.
//
//lint:ignore hotpath-no-alloc returns freshly allocated per-solve loads by API contract (two slices per call, proportional to nodes)
func (p *Problem) NodeLoads(a *Allocation) (up, down []float64) {
	up = make([]float64, p.NumNodes)
	down = make([]float64, p.NumNodes)
	for fi, f := range p.Flows {
		t := a.FlowThroughput(fi)
		up[f.Src] += t
		down[f.Dst] += t
	}
	return up, down
}

// MLU returns the maximum link utilisation: max_e load_e / cap_e.
func (p *Problem) MLU(a *Allocation) float64 {
	loads := p.LinkLoads(a)
	m := 0.0
	for i, l := range loads {
		if p.LinkCap[i] <= 0 {
			continue
		}
		if u := l / p.LinkCap[i]; u > m {
			m = u
		}
	}
	return m
}

// SatisfiedDemand returns throughput divided by total demand, in [0,1].
func (p *Problem) SatisfiedDemand(a *Allocation) float64 {
	d := p.TotalDemand()
	if d == 0 {
		return 1
	}
	return a.Throughput() / d
}

// Violations summarises constraint violations of an allocation.
type Violations struct {
	LinkOver   float64 // total Mbps above link capacities
	UpOver     float64 // total Mbps above uplink capacities
	DownOver   float64 // total Mbps above downlink capacities
	DemandOver float64 // total Mbps above flow demands
	Negative   float64 // total magnitude of negative allocations
}

// Any reports whether any violation exceeds the tolerance.
func (v Violations) Any(tol float64) bool {
	return v.LinkOver > tol || v.UpOver > tol || v.DownOver > tol || v.DemandOver > tol || v.Negative > tol
}

// Check measures all constraint violations of an allocation.
func (p *Problem) Check(a *Allocation) Violations {
	var v Violations
	for fi := range p.Flows {
		var t float64
		for _, x := range a.X[fi] {
			if x < 0 {
				v.Negative -= x
				continue
			}
			t += x
		}
		if over := t - p.Flows[fi].DemandMbps; over > 0 {
			v.DemandOver += over
		}
	}
	loads := p.LinkLoads(a)
	for i, l := range loads {
		if over := l - p.LinkCap[i]; over > 0 {
			v.LinkOver += over
		}
	}
	if len(p.UpCap) > 0 || len(p.DownCap) > 0 {
		up, down := p.NodeLoads(a)
		for n := 0; n < p.NumNodes; n++ {
			if len(p.UpCap) > 0 {
				if over := up[n] - p.UpCap[n]; over > 0 && !math.IsInf(p.UpCap[n], 1) {
					v.UpOver += over
				}
			}
			if len(p.DownCap) > 0 {
				if over := down[n] - p.DownCap[n]; over > 0 && !math.IsInf(p.DownCap[n], 1) {
					v.DownOver += over
				}
			}
		}
	}
	return v
}

// Trim repairs an infeasible allocation in place (Sec. 3.3, "Correction for
// Constraint Violation"): negatives are clamped, per-flow totals are scaled
// down to demand, and each path is scaled by the most-violated resource it
// traverses. The result is always feasible.
func (p *Problem) Trim(a *Allocation) {
	// Clamp negatives and enforce demand caps.
	for fi, f := range p.Flows {
		var t float64
		for pi, x := range a.X[fi] {
			if x < 0 || math.IsNaN(x) {
				a.X[fi][pi] = 0
				x = 0
			}
			t += x
		}
		if t > f.DemandMbps && t > 0 {
			s := f.DemandMbps / t
			for pi := range a.X[fi] {
				a.X[fi][pi] *= s
			}
		}
	}
	// Resource scaling: compute scale factor per resource, then scale each
	// path by the minimum factor across the resources it uses. The scaled
	// loads can only decrease, so a single pass suffices for feasibility.
	loads := p.LinkLoads(a)
	//lint:ignore hotpath-no-alloc per-solve correction scratch, proportional to links, not per-op
	linkScale := make([]float64, len(loads))
	for i := range loads {
		linkScale[i] = 1
		if loads[i] > p.LinkCap[i] && loads[i] > 0 {
			linkScale[i] = p.LinkCap[i] / loads[i]
		}
	}
	var upScale, downScale []float64
	if len(p.UpCap) > 0 || len(p.DownCap) > 0 {
		up, down := p.NodeLoads(a)
		//lint:ignore hotpath-no-alloc per-solve correction scratch, proportional to nodes, not per-op
		upScale = make([]float64, p.NumNodes)
		//lint:ignore hotpath-no-alloc per-solve correction scratch, proportional to nodes, not per-op
		downScale = make([]float64, p.NumNodes)
		for n := 0; n < p.NumNodes; n++ {
			upScale[n], downScale[n] = 1, 1
			if len(p.UpCap) > 0 && !math.IsInf(p.UpCap[n], 1) && up[n] > p.UpCap[n] && up[n] > 0 {
				upScale[n] = p.UpCap[n] / up[n]
			}
			if len(p.DownCap) > 0 && !math.IsInf(p.DownCap[n], 1) && down[n] > p.DownCap[n] && down[n] > 0 {
				downScale[n] = p.DownCap[n] / down[n]
			}
		}
	}
	for fi, f := range p.Flows {
		for pi := range f.Paths {
			s := 1.0
			for _, li := range p.pathLinks[fi][pi] {
				if linkScale[li] < s {
					s = linkScale[li]
				}
			}
			if upScale != nil {
				if upScale[f.Src] < s {
					s = upScale[f.Src]
				}
				if downScale[f.Dst] < s {
					s = downScale[f.Dst]
				}
			}
			if s < 1 {
				a.X[fi][pi] *= s
			}
		}
	}
}

// FlowStats returns the per-flow satisfied-demand ratios (allocated/demand),
// used for the flow-level analysis of Appendix H.4.
func (p *Problem) FlowStats(a *Allocation) []float64 {
	out := make([]float64, len(p.Flows))
	for fi, f := range p.Flows {
		if f.DemandMbps <= 0 {
			out[fi] = 1
			continue
		}
		out[fi] = a.FlowThroughput(fi) / f.DemandMbps
	}
	return out
}

// JainIndex returns Jain's fairness index of the per-flow satisfaction
// ratios: (sum x)^2 / (n * sum x^2), in (0, 1], 1 = perfectly fair.
func (p *Problem) JainIndex(a *Allocation) float64 {
	ratios := p.FlowStats(a)
	if len(ratios) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, r := range ratios {
		sum += r
		sumSq += r * r
	}
	if sumSq == 0 {
		return 1
	}
	n := float64(len(ratios))
	return sum * sum / (n * sumSq)
}

// LogUtility returns the proportional-fairness utility sum(log(1+x_f)) of
// Appendix A Eq. (3) ("Maximize Network Utility" with a concave log that
// limits any single flow from monopolising resources).
func (p *Problem) LogUtility(a *Allocation) float64 {
	var u float64
	for fi := range p.Flows {
		u += math.Log1p(a.FlowThroughput(fi))
	}
	return u
}
