// Package lp provides linear-programming solvers used in place of the
// commercial solver of the paper: an exact dense primal simplex for
// standard-form problems (max c'x, Ax <= b, x >= 0, b >= 0), used for
// ground-truth TE labels and property tests, and helpers shared with the
// scalable approximate packing solver in internal/solvers.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Result of a simplex solve.
type Result struct {
	X          []float64
	Objective  float64
	Iterations int
}

// ErrUnbounded is returned when the LP has unbounded objective.
var ErrUnbounded = errors.New("lp: unbounded")

// ErrIterationLimit is returned when the pivot limit is exceeded.
var ErrIterationLimit = errors.New("lp: iteration limit exceeded")

const defaultMaxPivots = 200000

// Maximize solves max c'x subject to Ax <= b, x >= 0 with b >= 0 using the
// primal simplex method on a dense tableau. The all-slack basis is feasible
// because b >= 0, so no phase-1 is needed. Dantzig pricing is used with a
// Bland's-rule fallback to guarantee termination.
func Maximize(c []float64, a [][]float64, b []float64) (*Result, error) {
	m := len(a)
	n := len(c)
	if len(b) != m {
		return nil, fmt.Errorf("lp: %d rows but %d bounds", m, len(b))
	}
	for i := range a {
		if len(a[i]) != n {
			return nil, fmt.Errorf("lp: row %d has %d cols, want %d", i, len(a[i]), n)
		}
		if b[i] < 0 {
			return nil, fmt.Errorf("lp: negative bound b[%d]=%v (standard form requires b >= 0)", i, b[i])
		}
	}

	// Tableau: m rows of [A | I | b], then the objective row [-c | 0 | 0].
	w := n + m + 1
	t := make([][]float64, m+1)
	for i := 0; i < m; i++ {
		t[i] = make([]float64, w)
		copy(t[i], a[i])
		t[i][n+i] = 1
		t[i][w-1] = b[i]
	}
	t[m] = make([]float64, w)
	for j := 0; j < n; j++ {
		t[m][j] = -c[j]
	}

	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + i
	}

	const eps = 1e-9
	iter := 0
	blandAfter := 4 * (m + n) // switch to Bland's rule if cycling is suspected
	for {
		if iter > defaultMaxPivots {
			return nil, ErrIterationLimit
		}
		// Pricing: pick entering column.
		col := -1
		if iter < blandAfter {
			best := -eps
			for j := 0; j < n+m; j++ {
				if t[m][j] < best {
					best = t[m][j]
					col = j
				}
			}
		} else {
			for j := 0; j < n+m; j++ {
				if t[m][j] < -eps {
					col = j
					break
				}
			}
		}
		if col < 0 {
			break // optimal
		}
		// Ratio test: pick leaving row.
		row := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if t[i][col] > eps {
				r := t[i][w-1] / t[i][col]
				if r < bestRatio-eps || (math.Abs(r-bestRatio) <= eps && (row < 0 || basis[i] < basis[row])) {
					bestRatio = r
					row = i
				}
			}
		}
		if row < 0 {
			return nil, ErrUnbounded
		}
		pivot(t, row, col)
		basis[row] = col
		iter++
	}

	x := make([]float64, n)
	for i, bj := range basis {
		if bj < n {
			x[bj] = t[i][w-1]
		}
	}
	return &Result{X: x, Objective: t[m][w-1], Iterations: iter}, nil
}

func pivot(t [][]float64, row, col int) {
	w := len(t[0])
	pv := t[row][col]
	inv := 1 / pv
	for j := 0; j < w; j++ {
		t[row][j] *= inv
	}
	t[row][col] = 1 // exact
	for i := range t {
		if i == row {
			continue
		}
		f := t[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j < w; j++ {
			t[i][j] -= f * t[row][j]
		}
		t[i][col] = 0 // exact
	}
}
