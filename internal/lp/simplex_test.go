package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestSimplexTextbook(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> x=2, y=6, obj=36.
	res, err := Maximize(
		[]float64{3, 5},
		[][]float64{{1, 0}, {0, 2}, {3, 2}},
		[]float64{4, 12, 18},
	)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective-36) > 1e-9 {
		t.Errorf("objective = %v want 36", res.Objective)
	}
	if math.Abs(res.X[0]-2) > 1e-9 || math.Abs(res.X[1]-6) > 1e-9 {
		t.Errorf("x = %v", res.X)
	}
}

func TestSimplexDegenerateOK(t *testing.T) {
	// Beale's cycling example (classic degenerate LP); Bland fallback must
	// terminate at obj = 0.05.
	res, err := Maximize(
		[]float64{0.75, -150, 0.02, -6},
		[][]float64{
			{0.25, -60, -0.04, 9},
			{0.5, -90, -0.02, 3},
			{0, 0, 1, 0},
		},
		[]float64{0, 0, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective-0.05) > 1e-9 {
		t.Errorf("objective = %v want 0.05", res.Objective)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	_, err := Maximize([]float64{1}, [][]float64{{-1}}, []float64{1})
	if err != ErrUnbounded {
		t.Errorf("err = %v want ErrUnbounded", err)
	}
}

func TestSimplexShapeErrors(t *testing.T) {
	if _, err := Maximize([]float64{1}, [][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("bound mismatch not detected")
	}
	if _, err := Maximize([]float64{1, 2}, [][]float64{{1}}, []float64{1}); err == nil {
		t.Error("row width mismatch not detected")
	}
	if _, err := Maximize([]float64{1}, [][]float64{{1}}, []float64{-1}); err == nil {
		t.Error("negative bound not detected")
	}
}

func TestSimplexZeroObjective(t *testing.T) {
	res, err := Maximize([]float64{0, 0}, [][]float64{{1, 1}}, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != 0 {
		t.Errorf("objective = %v", res.Objective)
	}
}

func TestSimplexSolutionFeasible(t *testing.T) {
	// Random packing LPs: solution must satisfy all constraints and be
	// at least as good as greedy single-variable solutions.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(6)
		m := 2 + rng.Intn(6)
		c := make([]float64, n)
		for j := range c {
			c[j] = rng.Float64() * 10
		}
		a := make([][]float64, m)
		b := make([]float64, m)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				if rng.Float64() < 0.7 {
					a[i][j] = rng.Float64() * 3
				}
			}
			b[i] = 1 + rng.Float64()*10
		}
		// Ensure boundedness: every variable appears in some constraint.
		for j := 0; j < n; j++ {
			a[rng.Intn(m)][j] += 0.5 + rng.Float64()
		}
		res, err := Maximize(c, a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Feasibility.
		for i := 0; i < m; i++ {
			var s float64
			for j := 0; j < n; j++ {
				if res.X[j] < -1e-9 {
					t.Fatalf("trial %d: negative x[%d]=%v", trial, j, res.X[j])
				}
				s += a[i][j] * res.X[j]
			}
			if s > b[i]+1e-6 {
				t.Fatalf("trial %d: constraint %d violated: %v > %v", trial, i, s, b[i])
			}
		}
		// Objective consistency.
		var obj float64
		for j := 0; j < n; j++ {
			obj += c[j] * res.X[j]
		}
		if math.Abs(obj-res.Objective) > 1e-6 {
			t.Fatalf("trial %d: objective mismatch %v vs %v", trial, obj, res.Objective)
		}
		// Optimality sanity: at least as good as the best single-variable
		// greedy solution.
		for j := 0; j < n; j++ {
			lim := math.Inf(1)
			for i := 0; i < m; i++ {
				if a[i][j] > 1e-12 {
					lim = math.Min(lim, b[i]/a[i][j])
				}
			}
			if !math.IsInf(lim, 1) && c[j]*lim > res.Objective+1e-6 {
				t.Fatalf("trial %d: simplex worse than greedy on var %d", trial, j)
			}
		}
	}
}

func TestSimplexDualityGapViaPerturbation(t *testing.T) {
	// Optimality spot-check: perturbing the optimum along feasible directions
	// must not improve the objective. We verify via re-solve with tighter
	// bounds on each variable (monotonicity of the optimum).
	c := []float64{2, 3, 1}
	a := [][]float64{{1, 1, 1}, {2, 1, 0}, {0, 1, 3}}
	b := []float64{10, 8, 9}
	res, err := Maximize(c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Scaling all bounds up can only increase the optimum.
	b2 := []float64{20, 16, 18}
	res2, err := Maximize(c, a, b2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Objective < res.Objective-1e-9 {
		t.Errorf("optimum decreased with looser bounds: %v -> %v", res.Objective, res2.Objective)
	}
	if math.Abs(res2.Objective-2*res.Objective) > 1e-6 {
		t.Errorf("LP not homogeneous: %v vs %v", res2.Objective, 2*res.Objective)
	}
}
