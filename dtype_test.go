package sate

import (
	"math"
	"testing"

	"sate/internal/constellation"
	"sate/internal/core"
	"sate/internal/solve"
	"sate/internal/te"
)

// maxRelDiff returns the largest |a-b| / max(scale, |b|) over all allocation
// entries, with b (the float64 path) as reference.
func maxRelDiff(t *testing.T, a, b *te.Allocation, scale float64) float64 {
	t.Helper()
	if len(a.X) != len(b.X) {
		t.Fatalf("allocation shape mismatch: %d vs %d flows", len(a.X), len(b.X))
	}
	worst := 0.0
	for f := range b.X {
		for p := range b.X[f] {
			ref := b.X[f][p]
			d := math.Abs(a.X[f][p]-ref) / math.Max(scale, math.Abs(ref))
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

func TestFloat32Float64Equivalence(t *testing.T) {
	cases := []struct {
		name      string
		cons      *constellation.Constellation
		intensity float64
	}{
		{"Iridium60", constellation.Iridium(), 60},
		{"MidSize125", constellation.MidSize1(), 125},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, p := benchProblem(t, tc.cons, tc.intensity)
			m := core.NewModel(core.DefaultConfig())
			a64, err := m.Solve(p)
			if err != nil {
				t.Fatal(err)
			}
			a32, err := m.Solve(p, solve.WithDtype(solve.Float32))
			if err != nil {
				t.Fatal(err)
			}
			if v := p.Check(a32); v.Any(1e-6) {
				t.Fatalf("float32 allocation infeasible: %+v", v)
			}
			d := maxRelDiff(t, a32, a64, 1.0)
			t.Logf("max relative deviation float32 vs float64: %.3g", d)
			if d > 5e-3 {
				t.Errorf("float32 path deviates %.3g from float64 (limit 5e-3)", d)
			}
		})
	}
}

// TestWarmStartBitwise checks that carrying warm-start state across cycles
// never changes results: when consecutive cycles share a topology the cached
// R1 embeddings are replayed (bit-identical by the fingerprint key), and when
// the topology churns the key misses and the module recomputes — so warm
// solves are bitwise-equal to cold solves in both regimes, for both dtypes.
func TestWarmStartBitwise(t *testing.T) {
	s, _ := benchProblem(t, constellation.Iridium(), 60)
	dtypes := []struct {
		name string
		opts []solve.Option
	}{
		{"float64", nil},
		{"float32", []solve.Option{solve.WithDtype(solve.Float32)}},
	}
	for _, dt := range dtypes {
		t.Run(dt.name, func(t *testing.T) {
			m := core.NewModel(core.DefaultConfig())
			cs := &core.CycleState{}
			// 30..31.5: stable ISL grid (cache hits); 300: the constellation
			// has moved far enough for access/topology churn (cache miss).
			for _, tsec := range []float64{30, 30.5, 31, 31.5, 300} {
				p, _, _, err := s.ProblemAt(tsec)
				if err != nil {
					t.Fatal(err)
				}
				cold, err := m.Solve(p, dt.opts...)
				if err != nil {
					t.Fatal(err)
				}
				warm, err := m.Solve(p, append([]solve.Option{solve.WithWarm(cs)}, dt.opts...)...)
				if err != nil {
					t.Fatal(err)
				}
				for f := range cold.X {
					for pi := range cold.X[f] {
						cw, ww := cold.X[f][pi], warm.X[f][pi]
						if math.Float64bits(cw) != math.Float64bits(ww) {
							t.Fatalf("t=%gs flow %d path %d: warm %v != cold %v",
								tsec, f, pi, ww, cw)
						}
					}
				}
			}
		})
	}
}
