module sate

go 1.24
