// Root benchmark suite: one bench per paper table/figure (each invokes the
// corresponding experiment driver at CI scale — run with -benchtime=1x to
// regenerate every artifact), plus micro-benchmarks of the hot components
// (SaTE inference, solvers, topology generation, path computation).
package sate

import (
	"bytes"
	"testing"

	"sate/internal/baselines"
	"sate/internal/constellation"
	"sate/internal/core"
	"sate/internal/experiments"
	"sate/internal/graphembed"
	"sate/internal/paths"
	"sate/internal/rules"
	"sate/internal/sim"
	"sate/internal/solve"
	"sate/internal/te"
	"sate/internal/topology"
)

// benchExperiment runs a registered experiment driver once per iteration.
func benchExperiment(b *testing.B, id string) {
	d, ok := experiments.Registry[id]
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := d(experiments.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + r.String())
		}
	}
}

// Table/figure regeneration benches (Sec. 5, Appendices D/H).

func BenchmarkFig4aTHT(b *testing.B)              { benchExperiment(b, "fig4a") }
func BenchmarkFig4bPathObsolescence(b *testing.B) { benchExperiment(b, "fig4b") }
func BenchmarkFig4cLinkExclusion(b *testing.B)    { benchExperiment(b, "fig4c") }
func BenchmarkTable1Volumes(b *testing.B)         { benchExperiment(b, "tab1") }
func BenchmarkFig8aLatency(b *testing.B)          { benchExperiment(b, "fig8a") }
func BenchmarkFig8bLatencyCDF(b *testing.B)       { benchExperiment(b, "fig8b") }
func BenchmarkFig9aTraining(b *testing.B)         { benchExperiment(b, "fig9a") }
func BenchmarkFig9bTopologyPruning(b *testing.B)  { benchExperiment(b, "fig9b") }
func BenchmarkFig10abOnline(b *testing.B)         { benchExperiment(b, "fig10ab") }
func BenchmarkFig10cTeal(b *testing.B)            { benchExperiment(b, "fig10c") }
func BenchmarkFig10dGeneralization(b *testing.B)  { benchExperiment(b, "fig10d") }
func BenchmarkFig13RuleDistribution(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig14Offline(b *testing.B)          { benchExperiment(b, "fig14") }
func BenchmarkFig15aMLU(b *testing.B)             { benchExperiment(b, "fig15a") }
func BenchmarkFig15bFailures(b *testing.B)        { benchExperiment(b, "fig15b") }
func BenchmarkFig16FlowLevel(b *testing.B)        { benchExperiment(b, "fig16") }

// Ablation benches (DESIGN.md Sec. 4).

func BenchmarkAblationGraphReduction(b *testing.B) { benchExperiment(b, "abl-graph") }
func BenchmarkAblationPruning(b *testing.B)        { benchExperiment(b, "abl-prune") }
func BenchmarkAblationDPPvsRandom(b *testing.B)    { benchExperiment(b, "abl-dpp") }
func BenchmarkAblationAttention(b *testing.B)      { benchExperiment(b, "abl-attn") }
func BenchmarkAblationMWUEpsilon(b *testing.B)     { benchExperiment(b, "abl-mwu") }

// Micro-benchmarks of the hot paths.

func benchProblem(b testing.TB, cons *constellation.Constellation, intensity float64) (*sim.Scenario, *te.Problem) {
	b.Helper()
	s := sim.NewScenario(cons, sim.ScenarioConfig{
		Mode:       topology.CrossShellLasers,
		Intensity:  intensity,
		Seed:       1,
		MinElevDeg: 10,
	})
	p, _, _, err := s.ProblemAt(30)
	if err != nil {
		b.Fatal(err)
	}
	return s, p
}

func BenchmarkSaTEInference66(b *testing.B) {
	_, p := benchProblem(b, constellation.Iridium(), 60)
	m := core.NewModel(core.DefaultConfig())
	if _, err := m.Solve(p); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSaTEInference396(b *testing.B) {
	_, p := benchProblem(b, constellation.MidSize1(), 125)
	m := core.NewModel(core.DefaultConfig())
	if _, err := m.Solve(p); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSaTEInference66F32(b *testing.B) {
	_, p := benchProblem(b, constellation.Iridium(), 60)
	m := core.NewModel(core.DefaultConfig())
	if _, err := m.Solve(p, solve.WithDtype(solve.Float32)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(p, solve.WithDtype(solve.Float32)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSaTEInference396F32(b *testing.B) {
	_, p := benchProblem(b, constellation.MidSize1(), 125)
	m := core.NewModel(core.DefaultConfig())
	if _, err := m.Solve(p, solve.WithDtype(solve.Float32)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(p, solve.WithDtype(solve.Float32)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCycleReplay replays successive low-churn TE cycles (0.5 s apart on
// the 396-sat shell, where the grid ISL set is stable) through one model,
// optionally carrying a warm-start state across cycles. Traffic differs per
// cycle; the topology-derived R1 embedding is what the warm state can reuse.
// Intensity is kept moderate so the R1 module is a visible share of the
// solve — the regime the warm start targets (large constellation, per-cycle
// traffic churn, stable ISL grid).
func benchCycleReplay(b *testing.B, warm bool) {
	b.Helper()
	s, _ := benchProblem(b, constellation.MidSize1(), 25)
	m := core.NewModel(core.DefaultConfig())
	const cycles = 4
	problems := make([]*te.Problem, cycles)
	for i := range problems {
		p, _, _, err := s.ProblemAt(30 + 0.5*float64(i))
		if err != nil {
			b.Fatal(err)
		}
		problems[i] = p
	}
	var opts []solve.Option
	if warm {
		opts = append(opts, solve.WithWarm(&core.CycleState{}))
	}
	for _, p := range problems {
		if _, err := m.Solve(p, opts...); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(problems[i%cycles], opts...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSaTECycleReplayCold(b *testing.B) { benchCycleReplay(b, false) }
func BenchmarkSaTECycleReplayWarm(b *testing.B) { benchCycleReplay(b, true) }

func BenchmarkGKSolver(b *testing.B) {
	_, p := benchProblem(b, constellation.Iridium(), 60)
	solver := baselines.GK{Epsilon: 0.05}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkECMPWF(b *testing.B) {
	_, p := benchProblem(b, constellation.Iridium(), 60)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (baselines.ECMPWF{}).Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopologySnapshotStarlink(b *testing.B) {
	cons := constellation.StarlinkPhase1()
	gen := topology.NewGenerator(cons, topology.DefaultConfig(topology.CrossShellLasers))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gen.Snapshot(float64(i) * 0.0125)
	}
}

func BenchmarkGridKShortestStarlink(b *testing.B) {
	cons := constellation.StarlinkPhase1()
	gen := topology.NewGenerator(cons, topology.DefaultConfig(topology.CrossShellLasers))
	snap := gen.Snapshot(0)
	router := paths.NewGridRouter(cons, snap)
	// Build the lazily-constructed generic fallback graph before timing.
	// Without this, short -benchtime runs amortise its one-time cost over a
	// handful of iterations and report thousands of phantom allocs/op.
	router.Prewarm()
	router.KShortest(0, constellation.SatID(cons.Size()/2), 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := constellation.SatID(i * 97 % cons.Size()) // deterministic spread
		c := constellation.SatID((i*389 + 1) % cons.Size())
		if a != c {
			router.KShortest(a, c, 10)
		}
	}
}

func BenchmarkYenKShortest(b *testing.B) {
	cons := constellation.Iridium()
	gen := topology.NewGenerator(cons, topology.DefaultConfig(topology.CrossShellNone))
	snap := gen.Snapshot(0)
	g := paths.GraphFrom(snap)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.YenKShortest(topology.NodeID(i%60), topology.NodeID((i+33)%66), 10)
	}
}

func BenchmarkGraphEmbed(b *testing.B) {
	cons := constellation.MidSize1()
	gen := topology.NewGenerator(cons, topology.DefaultConfig(topology.CrossShellLasers))
	snap := gen.Snapshot(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		graphembed.Embed(snap, 128, 3)
	}
}

func BenchmarkTrimAllocation(b *testing.B) {
	_, p := benchProblem(b, constellation.Iridium(), 120)
	a, err := (baselines.ECMPWF{}).Solve(p)
	if err != nil {
		b.Fatal(err)
	}
	// Inflate to force trimming work each iteration.
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := a.Clone()
		for fi := range c.X {
			for pi := range c.X[fi] {
				c.X[fi][pi] *= 3
			}
		}
		p.Trim(c)
	}
}

func BenchmarkRuleCompilation(b *testing.B) {
	_, p := benchProblem(b, constellation.Iridium(), 60)
	a, err := (baselines.ECMPWF{}).Solve(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs := rules.Compile(p, a)
		if rs.NumRules() == 0 {
			b.Fatal("no rules")
		}
	}
}

func BenchmarkSnapshotSerialization(b *testing.B) {
	cons := constellation.MidSize1()
	gen := topology.NewGenerator(cons, topology.DefaultConfig(topology.CrossShellLasers))
	snap := gen.Snapshot(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := snap.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := topology.ReadSnapshot(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
