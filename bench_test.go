// Root benchmark suite: one bench per paper table/figure (each invokes the
// corresponding experiment driver at CI scale — run with -benchtime=1x to
// regenerate every artifact), plus micro-benchmarks of the hot components
// (SaTE inference, solvers, topology generation, path computation).
package sate

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"sate/internal/baselines"
	"sate/internal/constellation"
	"sate/internal/controller"
	"sate/internal/core"
	"sate/internal/experiments"
	"sate/internal/graphembed"
	"sate/internal/orbit"
	"sate/internal/paths"
	"sate/internal/pktsim"
	"sate/internal/ruledist"
	"sate/internal/rules"
	"sate/internal/shard"
	"sate/internal/sim"
	"sate/internal/solve"
	"sate/internal/te"
	"sate/internal/topology"
	"sate/internal/traffic"
)

// benchExperiment runs a registered experiment driver once per iteration.
func benchExperiment(b *testing.B, id string) {
	d, ok := experiments.Registry[id]
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := d(experiments.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + r.String())
		}
	}
}

// Table/figure regeneration benches (Sec. 5, Appendices D/H).

func BenchmarkFig4aTHT(b *testing.B)              { benchExperiment(b, "fig4a") }
func BenchmarkFig4bPathObsolescence(b *testing.B) { benchExperiment(b, "fig4b") }
func BenchmarkFig4cLinkExclusion(b *testing.B)    { benchExperiment(b, "fig4c") }
func BenchmarkTable1Volumes(b *testing.B)         { benchExperiment(b, "tab1") }
func BenchmarkFig8aLatency(b *testing.B)          { benchExperiment(b, "fig8a") }
func BenchmarkFig8bLatencyCDF(b *testing.B)       { benchExperiment(b, "fig8b") }
func BenchmarkFig9aTraining(b *testing.B)         { benchExperiment(b, "fig9a") }
func BenchmarkFig9bTopologyPruning(b *testing.B)  { benchExperiment(b, "fig9b") }
func BenchmarkFig10abOnline(b *testing.B)         { benchExperiment(b, "fig10ab") }
func BenchmarkFig10cTeal(b *testing.B)            { benchExperiment(b, "fig10c") }
func BenchmarkFig10dGeneralization(b *testing.B)  { benchExperiment(b, "fig10d") }
func BenchmarkFig13RuleDistribution(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig14Offline(b *testing.B)          { benchExperiment(b, "fig14") }
func BenchmarkFig15aMLU(b *testing.B)             { benchExperiment(b, "fig15a") }
func BenchmarkFig15bFailures(b *testing.B)        { benchExperiment(b, "fig15b") }
func BenchmarkFig16FlowLevel(b *testing.B)        { benchExperiment(b, "fig16") }

// Ablation benches (DESIGN.md Sec. 4).

func BenchmarkAblationGraphReduction(b *testing.B) { benchExperiment(b, "abl-graph") }
func BenchmarkAblationPruning(b *testing.B)        { benchExperiment(b, "abl-prune") }
func BenchmarkAblationDPPvsRandom(b *testing.B)    { benchExperiment(b, "abl-dpp") }
func BenchmarkAblationAttention(b *testing.B)      { benchExperiment(b, "abl-attn") }
func BenchmarkAblationMWUEpsilon(b *testing.B)     { benchExperiment(b, "abl-mwu") }

// Micro-benchmarks of the hot paths.

func benchProblem(b testing.TB, cons *constellation.Constellation, intensity float64) (*sim.Scenario, *te.Problem) {
	b.Helper()
	s := sim.NewScenario(cons, sim.ScenarioConfig{
		Mode:       topology.CrossShellLasers,
		Intensity:  intensity,
		Seed:       1,
		MinElevDeg: 10,
	})
	p, _, _, err := s.ProblemAt(30)
	if err != nil {
		b.Fatal(err)
	}
	return s, p
}

func BenchmarkSaTEInference66(b *testing.B) {
	_, p := benchProblem(b, constellation.Iridium(), 60)
	m := core.NewModel(core.DefaultConfig())
	if _, err := m.Solve(p); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSaTEInference396(b *testing.B) {
	_, p := benchProblem(b, constellation.MidSize1(), 125)
	m := core.NewModel(core.DefaultConfig())
	if _, err := m.Solve(p); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSaTEInference66F32(b *testing.B) {
	_, p := benchProblem(b, constellation.Iridium(), 60)
	m := core.NewModel(core.DefaultConfig())
	if _, err := m.Solve(p, solve.WithDtype(solve.Float32)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(p, solve.WithDtype(solve.Float32)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSaTEInference396F32(b *testing.B) {
	_, p := benchProblem(b, constellation.MidSize1(), 125)
	m := core.NewModel(core.DefaultConfig())
	if _, err := m.Solve(p, solve.WithDtype(solve.Float32)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(p, solve.WithDtype(solve.Float32)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCycleChurn replays successive TE cycles (0.5 s apart on the 396-sat
// shell) through one model under scripted sparse churn: three of four
// cycles keep the ISL grid intact, every fourth fails ~1% of links (paths
// stay configured for the pre-failure topology, as in the paper's failure
// replay). The warm variant carries a CycleState across cycles and reports
// the measured R1 warm-hit ratio, so the benchmark states how much temporal
// reuse the churn leaves rather than silently replaying identical
// topologies. Intensity is kept moderate so the R1 module is a visible
// share of the solve — the regime the warm start targets.
func benchCycleChurn(b *testing.B, warm bool) {
	b.Helper()
	s, _ := benchProblem(b, constellation.MidSize1(), 25)
	m := core.NewModel(core.DefaultConfig())
	const cycles = 8
	problems := make([]*te.Problem, cycles)
	for i := range problems {
		t := 30 + 0.5*float64(i)
		if i%4 == 3 {
			p, _, err := s.ProblemWithFailures(t, 0.01, rand.New(rand.NewSource(int64(i))))
			if err != nil {
				b.Fatal(err)
			}
			problems[i] = p
			continue
		}
		p, _, _, err := s.ProblemAt(t)
		if err != nil {
			b.Fatal(err)
		}
		problems[i] = p
	}
	var opts []solve.Option
	var cs *core.CycleState
	if warm {
		cs = &core.CycleState{}
		opts = append(opts, solve.WithWarm(cs))
	}
	for _, p := range problems {
		if _, err := m.Solve(p, opts...); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(problems[i%cycles], opts...); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if cs != nil {
		if hits, misses := cs.R1Stats(); hits+misses > 0 {
			b.ReportMetric(float64(hits)/float64(hits+misses), "r1warmhit")
		}
	}
}

func BenchmarkSaTECycleChurnCold(b *testing.B) { benchCycleChurn(b, false) }
func BenchmarkSaTECycleChurnWarm(b *testing.B) { benchCycleChurn(b, true) }

// BenchmarkPktSim executes one discrete-event packet run per iteration: an
// ECMP-WF allocation on the Iridium scenario under a burst plus a rule-update
// window with real distribution delays (DESIGN.md §15).
func BenchmarkPktSim(b *testing.B) {
	s, pCur := benchProblem(b, constellation.Iridium(), 60)
	_, snap, _, err := s.ProblemAt(30)
	if err != nil {
		b.Fatal(err)
	}
	pPrev, _, _, err := s.ProblemAt(28)
	if err != nil {
		b.Fatal(err)
	}
	al := baselines.ECMPWF{}
	aCur, err := al.Solve(pCur)
	if err != nil {
		b.Fatal(err)
	}
	aPrev, err := al.Solve(pPrev)
	if err != nil {
		b.Fatal(err)
	}
	spec := &pktsim.RunSpec{
		Snap: snap, Problem: pCur, Alloc: aCur,
		Update: &pktsim.RuleUpdate{
			PrevProblem: pPrev, PrevAlloc: aPrev, AtSec: 0.25,
			DelaysSec: ruledist.RuleDistributionDelays(snap, ruledist.HoustonSite, orbit.Deg(10)),
		},
	}
	cfg := pktsim.Config{
		Seed: 1, HorizonSec: 0.5, JitterFrac: 0.03, Spikes: 2, Handovers: 1,
		Burst:      &pktsim.Burst{StartSec: 0.1, DurSec: 0.2, Factor: 3},
		MaxPackets: 200000,
	}
	res, err := pktsim.Run(spec, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if res.Injected == 0 || res.Delivered == 0 {
		b.Fatalf("degenerate run: %+v", res)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pktsim.Run(spec, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(res.Injected), "pkts")
}

// shardedBenchProblems builds `cycles` successive TE problems over one
// fixed-time snapshot of a single-shell Walker constellation with
// region-local traffic (user hotspots keep flows within a few orbital
// planes of their source). Each cycle fails a disjoint handful of ISLs
// inside the first plane band — one shard at k=16 — modelling a regional
// failure domain: exactly the churn whose cost the sharded solver's dirty
// set confines. Paths stay configured for the pre-failure grid.
func shardedBenchProblems(b *testing.B, planes, spp, flows, cycles int) []*te.Problem {
	b.Helper()
	numSats := planes * spp
	cons := constellation.MustNew(fmt.Sprintf("walker-%d", numSats), []constellation.Shell{{
		Name: "shell", AltitudeKm: 550, InclinationDeg: 53,
		Planes: planes, SatsPerPlane: spp, PhaseFactor: 17, RAANSpanDeg: 360,
	}})
	gen := topology.NewGenerator(cons, topology.DefaultConfig(topology.CrossShellNone))
	snap := gen.Snapshot(0)
	db := paths.NewDB(cons, snap, 10)
	rng := rand.New(rand.NewSource(11))
	tm := &traffic.Matrix{NumSats: numSats}
	for len(tm.Entries) < flows {
		sp := rng.Intn(planes)
		dp := sp + rng.Intn(2)
		if dp >= planes {
			dp = planes - 1
		}
		ss := rng.Intn(spp)
		ds := (ss + 1 + rng.Intn(6)) % spp
		src := constellation.SatID(sp*spp + ss)
		dst := constellation.SatID(dp*spp + ds)
		if src == dst {
			continue
		}
		tm.Entries = append(tm.Entries, traffic.Demand{Src: src, Dst: dst, DemandMbps: 20})
	}
	region := topology.NodeID(numSats / 16)
	var regionLinks []int
	for li, l := range snap.Links {
		if l.B < region {
			regionLinks = append(regionLinks, li)
		}
	}
	const failPerCycle = 4
	if len(regionLinks) < cycles*failPerCycle {
		b.Fatalf("region has %d links, need %d", len(regionLinks), cycles*failPerCycle)
	}
	cfg := te.BuildConfig{LinkCapMbps: 200, K: 10}
	out := make([]*te.Problem, cycles)
	for c := range out {
		failed := make(map[int]bool, failPerCycle)
		for _, li := range regionLinks[c*failPerCycle : (c+1)*failPerCycle] {
			failed[li] = true
		}
		fs := &topology.Snapshot{TimeSec: snap.TimeSec, NumSats: snap.NumSats, NumNodes: snap.NumNodes, Pos: snap.Pos}
		for li, l := range snap.Links {
			if !failed[li] {
				fs.Links = append(fs.Links, l)
			}
		}
		fs.Finalize()
		p, err := te.Build(fs, tm, db, cfg)
		if err != nil {
			b.Fatal(err)
		}
		out[c] = p
	}
	return out
}

// benchShardedSolve replays the regional-churn cycles through a sharded
// SaTE solver. shards=1 is the monolithic baseline — it still gets the warm
// path, and its misses are the point: any regional churn invalidates the
// whole constellation's R1 inputs, while the sharded solver confines the
// recompute to the one dirty shard.
func benchShardedSolve(b *testing.B, planes, spp, flows, shards int) {
	const cycles = 8
	problems := shardedBenchProblems(b, planes, spp, flows, cycles)
	m := core.NewModel(core.DefaultConfig())
	s := shard.New(m, shards)
	var opts []solve.Option
	var cs *core.CycleState
	if shards <= 1 {
		cs = &core.CycleState{}
		opts = append(opts, solve.WithWarm(cs))
	}
	for _, p := range problems {
		if _, err := s.Solve(p, opts...); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(problems[i%cycles], opts...); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	hits, misses := s.R1Stats()
	if cs != nil {
		hits, misses = cs.R1Stats()
	}
	if hits+misses > 0 {
		b.ReportMetric(float64(hits)/float64(hits+misses), "r1warmhit")
	}
}

func BenchmarkShardedSolve(b *testing.B) {
	for _, sz := range []struct{ planes, spp, flows int }{
		{32, 66, 128},  // ~2k satellites
		{128, 62, 128}, // ~8k satellites
	} {
		for _, k := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("sats=%d/shards=%d", sz.planes*sz.spp, k), func(b *testing.B) {
				benchShardedSolve(b, sz.planes, sz.spp, sz.flows, k)
			})
		}
	}
}

func BenchmarkGKSolver(b *testing.B) {
	_, p := benchProblem(b, constellation.Iridium(), 60)
	solver := baselines.GK{Epsilon: 0.05}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkECMPWF(b *testing.B) {
	_, p := benchProblem(b, constellation.Iridium(), 60)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (baselines.ECMPWF{}).Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopologySnapshotStarlink(b *testing.B) {
	cons := constellation.StarlinkPhase1()
	gen := topology.NewGenerator(cons, topology.DefaultConfig(topology.CrossShellLasers))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gen.Snapshot(float64(i) * 0.0125)
	}
}

func BenchmarkGridKShortestStarlink(b *testing.B) {
	cons := constellation.StarlinkPhase1()
	gen := topology.NewGenerator(cons, topology.DefaultConfig(topology.CrossShellLasers))
	snap := gen.Snapshot(0)
	router := paths.NewGridRouter(cons, snap)
	// Build the lazily-constructed generic fallback graph before timing.
	// Without this, short -benchtime runs amortise its one-time cost over a
	// handful of iterations and report thousands of phantom allocs/op.
	router.Prewarm()
	router.KShortest(0, constellation.SatID(cons.Size()/2), 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := constellation.SatID(i * 97 % cons.Size()) // deterministic spread
		c := constellation.SatID((i*389 + 1) % cons.Size())
		if a != c {
			router.KShortest(a, c, 10)
		}
	}
}

func BenchmarkYenKShortest(b *testing.B) {
	cons := constellation.Iridium()
	gen := topology.NewGenerator(cons, topology.DefaultConfig(topology.CrossShellNone))
	snap := gen.Snapshot(0)
	g := paths.GraphFrom(snap)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.YenKShortest(topology.NodeID(i%60), topology.NodeID((i+33)%66), 10)
	}
}

func BenchmarkGraphEmbed(b *testing.B) {
	cons := constellation.MidSize1()
	gen := topology.NewGenerator(cons, topology.DefaultConfig(topology.CrossShellLasers))
	snap := gen.Snapshot(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		graphembed.Embed(snap, 128, 3)
	}
}

func BenchmarkTrimAllocation(b *testing.B) {
	_, p := benchProblem(b, constellation.Iridium(), 120)
	a, err := (baselines.ECMPWF{}).Solve(p)
	if err != nil {
		b.Fatal(err)
	}
	// Inflate to force trimming work each iteration.
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := a.Clone()
		for fi := range c.X {
			for pi := range c.X[fi] {
				c.X[fi][pi] *= 3
			}
		}
		p.Trim(c)
	}
}

func BenchmarkRuleCompilation(b *testing.B) {
	_, p := benchProblem(b, constellation.Iridium(), 60)
	a, err := (baselines.ECMPWF{}).Solve(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs := rules.Compile(p, a)
		if rs.NumRules() == 0 {
			b.Fatal("no rules")
		}
	}
}

func BenchmarkSnapshotSerialization(b *testing.B) {
	cons := constellation.MidSize1()
	gen := topology.NewGenerator(cons, topology.DefaultConfig(topology.CrossShellLasers))
	snap := gen.Snapshot(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := snap.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := topology.ReadSnapshot(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// Serving-path benchmarks (DESIGN.md §14): the copy-on-publish snapshot
// surface must sustain high read QPS with sub-millisecond tails while
// recomputes publish fresh versions underneath.

// nullResponseWriter swallows the body so the benchmark measures the
// handler, not response buffering.
type nullResponseWriter struct {
	hdr    http.Header
	status int
	bytes  int64
}

func (w *nullResponseWriter) Header() http.Header { return w.hdr }
func (w *nullResponseWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	w.bytes += int64(len(p))
	return len(p), nil
}
func (w *nullResponseWriter) WriteHeader(code int) { w.status = code }

func benchServingController(b *testing.B) *controller.Server {
	b.Helper()
	scen := sim.NewScenario(constellation.Toy(6, 8), sim.ScenarioConfig{
		Mode:         topology.CrossShellLasers,
		Intensity:    60,
		Seed:         7,
		Users:        2000,
		UserClusters: 60,
		Gateways:     8,
		Relays:       4,
		MinElevDeg:   5,
	})
	srv := controller.New(scen, baselines.ECMPWF{})
	if err := srv.RecomputeContext(context.Background(), 100); err != nil {
		b.Fatal(err)
	}
	return srv
}

// BenchmarkServeSnapshot hammers GET /v1/status through the real handler
// while a background publisher keeps swapping snapshots. Reported metrics:
// sustained req/s and p50/p99 per-request latency in milliseconds.
func BenchmarkServeSnapshot(b *testing.B) {
	srv := benchServingController(b)
	h := srv.Handler()

	stop := make(chan struct{})
	var pubWG sync.WaitGroup
	pubWG.Add(1)
	go func() {
		defer pubWG.Done()
		t := 100.0
		for {
			select {
			case <-stop:
				return
			default:
			}
			t += 5
			if err := srv.RecomputeContext(context.Background(), t); err != nil {
				b.Error(err)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	var mu sync.Mutex
	var lats []int64
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		req := httptest.NewRequest(http.MethodGet, "/v1/status", nil)
		w := &nullResponseWriter{hdr: make(http.Header, 4)}
		local := make([]int64, 0, 4096)
		for pb.Next() {
			t0 := time.Now()
			w.status = 0
			h.ServeHTTP(w, req)
			local = append(local, time.Since(t0).Nanoseconds())
			if w.status != http.StatusOK {
				b.Errorf("status = %d", w.status)
				return
			}
		}
		mu.Lock()
		lats = append(lats, local...)
		mu.Unlock()
	})
	elapsed := time.Since(start)
	b.StopTimer()
	close(stop)
	pubWG.Wait()
	if len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	b.ReportMetric(float64(len(lats))/elapsed.Seconds(), "req/s")
	b.ReportMetric(float64(lats[len(lats)*50/100])/1e6, "p50-ms")
	b.ReportMetric(float64(lats[len(lats)*99/100])/1e6, "p99-ms")
}

// BenchmarkDeltaCatchup measures a rule consumer reconstructing the latest
// RuleSet from a stale version via the changelog: Since() + Apply() per
// retained delta, rotating across every possible staleness depth.
func BenchmarkDeltaCatchup(b *testing.B) {
	srv := benchServingController(b)
	const cycles = 8
	for i := 1; i < cycles; i++ {
		if err := srv.RecomputeContext(context.Background(), 100+5*float64(i)); err != nil {
			b.Fatal(err)
		}
	}
	log := srv.Changelog()
	latest := log.Latest()
	// A consumer at version v holds the rules of version v; reconstruct the
	// held states once so each iteration only pays the catch-up itself.
	held := make([]*rules.RuleSet, latest+1)
	held[0] = &rules.RuleSet{}
	cur := &rules.RuleSet{}
	for v := uint64(1); v <= latest; v++ {
		cu := log.Since(v - 1)
		if cu.FullSync {
			b.Fatalf("version %d already compacted out; raise history", v-1)
		}
		cur = ruledist.Apply(cur, cu.Deltas[0])
		held[v] = cur
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		since := uint64(i) % latest // every staleness depth, round-robin
		cu := log.Since(since)
		got := held[since]
		for _, d := range cu.Deltas {
			got = ruledist.Apply(got, d)
		}
		if got.NumRules() != held[latest].NumRules() {
			b.Fatalf("catch-up from %d diverged", since)
		}
	}
}
